//! E4 — Circuit-level performance and the fusion ablation.
//!
//! Whole-circuit wall time for QFT, random circuits, and quantum volume
//! under the three execution strategies, sweeping the fusion width k.
//! Expected shape: fused < naive on deep circuits, with an optimum
//! around k = 3–5 (past it, the 2^k matrix FLOPs outgrow the bandwidth
//! savings); sweep counts explain the gap.

use qcs_bench::{checksum, fmt_secs, time_best, Table};
use qcs_core::circuit::Circuit;
use qcs_core::config::SimConfig;
use qcs_core::library;
use qcs_core::sim::Strategy;
use qcs_core::state::StateVector;
use qcs_core::telemetry::TelemetryConfig;

fn measure(c: &Circuit, strat: Strategy) -> (f64, usize) {
    let sim = SimConfig::new().strategy(strat).build().unwrap();
    let mut sweeps = 0;
    let secs = time_best(2, || {
        let mut s = StateVector::zero(c.n_qubits());
        let report = sim.run(c, &mut s).unwrap();
        sweeps = report.sweeps;
        std::hint::black_box(checksum(s.amplitudes()));
    });
    (secs, sweeps)
}

fn bench_circuit(name: &str, c: &Circuit) {
    println!();
    println!("E4: {name} — n = {}, {} gates, depth {}", c.n_qubits(), c.len(), c.depth());
    let mut table = Table::new(&["strategy", "sweeps", "time", "vs naive"]);
    let (naive_secs, naive_sweeps) = measure(c, Strategy::Naive);
    table.row(&[
        "naive (QuEST-like)".into(),
        naive_sweeps.to_string(),
        fmt_secs(naive_secs),
        "1.00×".into(),
    ]);
    for k in [2u32, 3, 4, 5] {
        let (secs, sweeps) = measure(c, Strategy::Fused { max_k: k });
        table.row(&[
            format!("fused k={k} (Aer-like)"),
            sweeps.to_string(),
            fmt_secs(secs),
            format!("{:.2}×", naive_secs / secs),
        ]);
    }
    let (secs, sweeps) = measure(c, Strategy::Blocked { block_qubits: 14 });
    table.row(&[
        "blocked (2^14 amps)".into(),
        sweeps.to_string(),
        fmt_secs(secs),
        format!("{:.2}×", naive_secs / secs),
    ]);
    table.print();
}

/// Paper-scale (memory-bound) comparison on the A64FX model only — the
/// host runs its measurements at cache-resident sizes where fusion's
/// extra FLOPs dominate; at 2^26 amplitudes the tradeoff inverts.
fn model_at_scale(name: &str, c: &Circuit) {
    use a64fx_model::timing::ExecConfig;
    use a64fx_model::ChipParams;
    use qcs_core::fusion::fuse;
    use qcs_core::perf::{predict_circuit, predict_fused};

    let chip = ChipParams::a64fx();
    let cfg = ExecConfig::full_chip();
    println!();
    println!("E4 (modelled at n = {}): {name} — {} gates", c.n_qubits(), c.len());
    let mut table = Table::new(&["strategy", "sweeps", "model time", "vs naive", "HBM GiB"]);
    let naive = predict_circuit(&chip, &cfg, c);
    table.row(&[
        "naive".into(),
        naive.sweeps.to_string(),
        fmt_secs(naive.seconds),
        "1.00×".into(),
        format!("{:.1}", naive.mem_bytes as f64 / (1u64 << 30) as f64),
    ]);
    for k in [2u32, 3, 4, 5] {
        let plan = fuse(c, k);
        let fused = predict_fused(&chip, &cfg, &plan, c.n_qubits());
        table.row(&[
            format!("fused k={k}"),
            fused.sweeps.to_string(),
            fmt_secs(fused.seconds),
            format!("{:.2}×", naive.seconds / fused.seconds),
            format!("{:.1}", fused.mem_bytes as f64 / (1u64 << 30) as f64),
        ]);
    }
    table.print();
}

/// Re-price one recorded trace at the HBM-bound (paper-scale) regime:
/// every span carries the traffic it moved (bytes, flops, amplitudes),
/// so its cost at full-chip roofs is derivable from the artifact alone —
/// no re-simulation, no circuit in hand.
fn hbm_bound_seconds(t: &qcs_core::telemetry::Trace) -> f64 {
    use a64fx_model::timing::{predict, ExecConfig, KernelProfile};
    use a64fx_model::traffic::KernelKind;
    use a64fx_model::ChipParams;
    use qcs_core::perf::estimate_instructions;
    use qcs_core::telemetry::SpanKind;

    let chip = ChipParams::a64fx();
    let cfg = ExecConfig::full_chip();
    t.spans
        .iter()
        .map(|s| {
            let kind = match s.kind {
                SpanKind::Kernel(k) => k,
                SpanKind::Block { k, .. } => KernelKind::FusedDense { k },
                SpanKind::Exchange(_) | SpanKind::Reduce { .. } | SpanKind::Measure => return 0.0,
            };
            let profile = KernelProfile {
                flops: s.flops,
                mem_bytes: s.bytes,
                l2_bytes: s.bytes,
                instructions: estimate_instructions(kind, s.amps, chip.simd_bits),
                gather_scatter: 0,
            };
            predict(&chip, &profile, &cfg).seconds
        })
        .sum()
}

/// The fusion ablation re-derived from telemetry alone. Each run
/// records per-sweep spans — priced against the A64FX model at record
/// time — into one JSONL file; the optimum k is then recovered by
/// *reading the file back*, so the claim is reproducible from the
/// artifact without re-running anything. The recorded `model` column
/// respects cache residency at the host's n (compute-shaped), while the
/// `@scale` column re-prices each span's recorded traffic at the HBM
/// roof — the paper's regime, where the k ≈ 4 optimum emerges.
fn traced_fusion_sweep(name: &str, c: &Circuit) {
    use a64fx_model::timing::ExecConfig;
    use a64fx_model::ChipParams;
    use qcs_core::telemetry::drift::DriftReport;
    use qcs_core::telemetry::sink::read_jsonl;

    let path = std::path::Path::new("results/trace_e4.jsonl");
    let _ = std::fs::remove_file(path);

    let mut runs: Vec<(String, Strategy)> = vec![("naive".into(), Strategy::Naive)];
    for k in [2u32, 3, 4, 5] {
        runs.push((format!("k={k}"), Strategy::Fused { max_k: k }));
    }
    for (label, strat) in &runs {
        let sim = SimConfig::new()
            .strategy(*strat)
            .model(ChipParams::a64fx(), ExecConfig::full_chip())
            .telemetry(
                TelemetryConfig::on().with_output(path).appending(true).with_label(label.clone()),
            )
            .build()
            .unwrap();
        let mut s = StateVector::zero(c.n_qubits());
        sim.run(c, &mut s).unwrap();
        std::hint::black_box(checksum(s.amplitudes()));
    }

    println!();
    println!("E4 (trace-derived): {name} — n = {}, from {}", c.n_qubits(), path.display());
    let traces = read_jsonl(path).expect("trace file written above");
    let mut table =
        Table::new(&["run", "spans", "measured", "model", "drift", "@scale", "HBM MiB"]);
    let mut best: Option<(String, f64)> = None;
    for t in &traces {
        let drift = DriftReport::from_trace(t);
        let at_scale = hbm_bound_seconds(t);
        table.row(&[
            t.meta.label.clone(),
            t.summary.spans.to_string(),
            fmt_secs(t.summary.wall_ns as f64 / 1e9),
            fmt_secs(t.summary.model_ns / 1e9),
            drift.compute_ratio().map_or("-".into(), |r| format!("{r:.2}×")),
            fmt_secs(at_scale),
            format!("{:.1}", t.summary.bytes as f64 / (1 << 20) as f64),
        ]);
        if t.meta.label.starts_with("k=") && best.as_ref().is_none_or(|(_, s)| at_scale < *s) {
            best = Some((t.meta.label.clone(), at_scale));
        }
    }
    table.print();
    if let Some((label, _)) = best {
        println!("trace-derived fusion optimum (min HBM-bound time over fused runs): {label}");
    }
}

fn main() {
    let n = 18u32;
    bench_circuit("QFT", &library::qft(n));
    bench_circuit("random circuit (depth 20)", &library::random_circuit(n, 20, 42));
    bench_circuit("quantum volume", &library::quantum_volume(16, 7));
    bench_circuit("rotation layers ×8 (fusion-friendly)", &library::rotation_layers(n, 8, 0.37));
    println!();
    println!("Host measurements above run at cache-resident sizes (this machine), where");
    println!("fusion's extra arithmetic dominates. At paper scale the state is HBM-bound:");

    let big = 26u32;
    model_at_scale("random circuit (depth 20)", &library::random_circuit(big, 20, 42));
    model_at_scale("rotation layers ×8", &library::rotation_layers(big, 8, 0.37));

    traced_fusion_sweep("rotation layers ×8", &library::rotation_layers(n, 8, 0.37));

    println!();
    println!("Expected shape (memory-bound regime): fused time tracks the sweep count until");
    println!("k ≈ 4–5 where the 2^k matrix FLOPs reach the compute roof and gains flatten.");
}
