//! E4 — Circuit-level performance and the fusion ablation.
//!
//! Whole-circuit wall time for QFT, random circuits, and quantum volume
//! under the three execution strategies, sweeping the fusion width k.
//! Expected shape: fused < naive on deep circuits, with an optimum
//! around k = 3–5 (past it, the 2^k matrix FLOPs outgrow the bandwidth
//! savings); sweep counts explain the gap.

use qcs_bench::{checksum, fmt_secs, time_best, Table};
use qcs_core::circuit::Circuit;
use qcs_core::library;
use qcs_core::sim::{Simulator, Strategy};
use qcs_core::state::StateVector;

fn measure(c: &Circuit, strat: Strategy) -> (f64, usize) {
    let mut sweeps = 0;
    let secs = time_best(2, || {
        let mut s = StateVector::zero(c.n_qubits());
        let report = Simulator::new().with_strategy(strat).run(c, &mut s).unwrap();
        sweeps = report.sweeps;
        std::hint::black_box(checksum(s.amplitudes()));
    });
    (secs, sweeps)
}

fn bench_circuit(name: &str, c: &Circuit) {
    println!();
    println!("E4: {name} — n = {}, {} gates, depth {}", c.n_qubits(), c.len(), c.depth());
    let mut table = Table::new(&["strategy", "sweeps", "time", "vs naive"]);
    let (naive_secs, naive_sweeps) = measure(c, Strategy::Naive);
    table.row(&[
        "naive (QuEST-like)".into(),
        naive_sweeps.to_string(),
        fmt_secs(naive_secs),
        "1.00×".into(),
    ]);
    for k in [2u32, 3, 4, 5] {
        let (secs, sweeps) = measure(c, Strategy::Fused { max_k: k });
        table.row(&[
            format!("fused k={k} (Aer-like)"),
            sweeps.to_string(),
            fmt_secs(secs),
            format!("{:.2}×", naive_secs / secs),
        ]);
    }
    let (secs, sweeps) = measure(c, Strategy::Blocked { block_qubits: 14 });
    table.row(&[
        "blocked (2^14 amps)".into(),
        sweeps.to_string(),
        fmt_secs(secs),
        format!("{:.2}×", naive_secs / secs),
    ]);
    table.print();
}

/// Paper-scale (memory-bound) comparison on the A64FX model only — the
/// host runs its measurements at cache-resident sizes where fusion's
/// extra FLOPs dominate; at 2^26 amplitudes the tradeoff inverts.
fn model_at_scale(name: &str, c: &Circuit) {
    use a64fx_model::timing::ExecConfig;
    use a64fx_model::ChipParams;
    use qcs_core::fusion::fuse;
    use qcs_core::perf::{predict_circuit, predict_fused};

    let chip = ChipParams::a64fx();
    let cfg = ExecConfig::full_chip();
    println!();
    println!("E4 (modelled at n = {}): {name} — {} gates", c.n_qubits(), c.len());
    let mut table = Table::new(&["strategy", "sweeps", "model time", "vs naive", "HBM GiB"]);
    let naive = predict_circuit(&chip, &cfg, c);
    table.row(&[
        "naive".into(),
        naive.sweeps.to_string(),
        fmt_secs(naive.seconds),
        "1.00×".into(),
        format!("{:.1}", naive.mem_bytes as f64 / (1u64 << 30) as f64),
    ]);
    for k in [2u32, 3, 4, 5] {
        let plan = fuse(c, k);
        let fused = predict_fused(&chip, &cfg, &plan, c.n_qubits());
        table.row(&[
            format!("fused k={k}"),
            fused.sweeps.to_string(),
            fmt_secs(fused.seconds),
            format!("{:.2}×", naive.seconds / fused.seconds),
            format!("{:.1}", fused.mem_bytes as f64 / (1u64 << 30) as f64),
        ]);
    }
    table.print();
}

fn main() {
    let n = 18u32;
    bench_circuit("QFT", &library::qft(n));
    bench_circuit("random circuit (depth 20)", &library::random_circuit(n, 20, 42));
    bench_circuit("quantum volume", &library::quantum_volume(16, 7));
    bench_circuit("rotation layers ×8 (fusion-friendly)", &library::rotation_layers(n, 8, 0.37));
    println!();
    println!("Host measurements above run at cache-resident sizes (this machine), where");
    println!("fusion's extra arithmetic dominates. At paper scale the state is HBM-bound:");

    let big = 26u32;
    model_at_scale("random circuit (depth 20)", &library::random_circuit(big, 20, 42));
    model_at_scale("rotation layers ×8", &library::rotation_layers(big, 8, 0.37));

    println!();
    println!("Expected shape (memory-bound regime): fused time tracks the sweep count until");
    println!("k ≈ 4–5 where the 2^k matrix FLOPs reach the compute roof and gains flatten.");
}
