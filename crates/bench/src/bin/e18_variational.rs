//! E18 — Variational loops: fused observable reductions and gate-major
//! parameter sweeps.
//!
//! Two questions:
//!
//! 1. **Reduction fusion.** A TFIM energy `⟨H⟩ = Σ cᵢ⟨Pᵢ⟩` evaluated
//!    term-by-term costs one full-state sweep per Pauli string. The
//!    compiled form shares one norms sweep across every diagonal term
//!    and one pair-product sweep per off-diagonal basis group, and runs
//!    each sweep through the SIMD reduction kernels. At n = 14 the
//!    TFIM's 2n−1 terms collapse to n+1 sweeps — the fused path should
//!    clear 2× on the host, and on the A64FX model once the baseline is
//!    priced, like the host baseline, on the scalar FP pipes.
//! 2. **Sweep batching.** One VQE gradient-descent iteration evaluates
//!    2p+1 parameter points. Serially that is 2p+1 engine builds and
//!    gate streams; the driver binds them into same-shaped circuits and
//!    runs one gate-major batch. The measured speedup is the batch
//!    engine's amortization, harvested by the variational layer.
//!
//! A convergence smoke closes the loop: a few GD iterations on the
//! TFIM must descend toward the exact dense ground energy.

use std::fmt::Write as _;

use qcs_bench::{fmt_secs, time_best, Table};
use qcs_core::config::SimConfig;
use qcs_core::expectation::Hamiltonian;
use qcs_core::perf::{predict_batched, predict_expectation};
use qcs_core::prelude::*;
use qcs_core::variational::hardware_efficient_ansatz;

use a64fx_model::timing::ExecConfig;
use a64fx_model::ChipParams;

const REDUCTION_WIDTHS: [u32; 3] = [10, 12, 14];
const REPS: usize = 5;

fn threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get()).min(4)
}

struct ReductionRow {
    n: u32,
    terms: usize,
    sweeps: usize,
    per_term_secs: f64,
    fused_secs: f64,
    speedup: f64,
    model_per_term_secs: f64,
    model_fused_secs: f64,
    model_speedup: f64,
}

/// Fused (compiled, SIMD, sweep-sharing) vs per-term scalar reduction
/// of the TFIM energy on a prepared state.
fn bench_reduction(rows: &mut Vec<ReductionRow>) {
    let chip = ChipParams::a64fx();
    let cfg = ExecConfig::full_chip();
    println!();
    println!("E18: observable reduction — TFIM ⟨H⟩, fused vs per-term, best of {REPS}");
    let mut table =
        Table::new(&["n", "terms", "sweeps", "per-term", "fused", "speedup", "model speedup"]);
    for &n in &REDUCTION_WIDTHS {
        let h = Hamiltonian::ising_chain(n, 1.0, 0.7);
        let compiled = h.compile();
        let mut state = StateVector::zero(n);
        let ansatz = hardware_efficient_ansatz(n, 1);
        let theta: Vec<f64> = (0..ansatz.n_params()).map(|j| 0.1 + 0.05 * j as f64).collect();
        Simulator::new().run(&ansatz.bind(&theta), &mut state).unwrap();

        let per_term_secs = time_best(REPS, || {
            std::hint::black_box(h.expectation_scalar(&state));
        });
        let fused_secs = time_best(REPS, || {
            std::hint::black_box(compiled.expectation(&state));
        });
        // A64FX model, mirroring what the host comparison measures: the
        // per-term baseline is *scalar* code making one sweep per term
        // (priced on the chip's scalar FP pipes, simd_bits = 64); the
        // fused path is SVE code making one sweep per basis group.
        let terms = compiled.terms();
        let sweeps = compiled.sweeps();
        let mut scalar_chip = chip.clone();
        scalar_chip.simd_bits = 64;
        let (_, per_term_model) = predict_expectation(&scalar_chip, &cfg, n, terms, terms);
        let (_, fused_model) = predict_expectation(&chip, &cfg, n, terms, sweeps);
        let row = ReductionRow {
            n,
            terms,
            sweeps,
            per_term_secs,
            fused_secs,
            speedup: per_term_secs / fused_secs,
            model_per_term_secs: per_term_model.seconds,
            model_fused_secs: fused_model.seconds,
            model_speedup: per_term_model.seconds / fused_model.seconds,
        };
        table.row(&[
            n.to_string(),
            terms.to_string(),
            sweeps.to_string(),
            fmt_secs(row.per_term_secs),
            fmt_secs(row.fused_secs),
            format!("{:.2}x", row.speedup),
            format!("{:.2}x", row.model_speedup),
        ]);
        rows.push(row);
    }
    table.print();
}

struct SweepRow {
    n: u32,
    points: usize,
    serial_secs: f64,
    batched_secs: f64,
    speedup: f64,
    model_speedup: f64,
}

/// One VQE iteration's parameter sweep (2p+1 points), serial per-point
/// runs vs the driver's gate-major batch.
fn bench_sweep(rows: &mut Vec<SweepRow>) {
    let chip = ChipParams::a64fx();
    let cfg = ExecConfig::full_chip();
    println!();
    println!(
        "E18: gradient sweep — 2p+1 parameter points per GD iteration, serial vs \
         gate-major batch, {} thread(s), best of {REPS}",
        threads()
    );
    let mut table = Table::new(&["n", "points", "serial", "batched", "speedup", "model speedup"]);
    for &n in &[8u32, 10, 12] {
        let h = Hamiltonian::ising_chain(n, 1.0, 0.7);
        let ansatz = hardware_efficient_ansatz(n, 1);
        let p = ansatz.n_params();
        let theta: Vec<f64> = (0..p).map(|j| 0.2 + 0.03 * j as f64).collect();
        let mut points: Vec<Vec<f64>> = Vec::with_capacity(2 * p + 1);
        for j in 0..p {
            let mut plus = theta.clone();
            plus[j] += std::f64::consts::FRAC_PI_2;
            points.push(plus);
            let mut minus = theta.clone();
            minus[j] -= std::f64::consts::FRAC_PI_2;
            points.push(minus);
        }
        points.push(theta.clone());

        let compiled = h.compile();
        let serial_secs = time_best(REPS, || {
            for point in &points {
                let sim = SimConfig::new().threads(threads()).build().unwrap();
                let mut s = StateVector::zero(n);
                sim.run(&ansatz.bind(point), &mut s).unwrap();
                std::hint::black_box(compiled.expectation(&s));
            }
        });
        let engine = BatchSimulator::from_config(SimConfig::new().threads(threads())).unwrap();
        let driver = VqeDriver::with_engine(ansatz.clone(), &h, engine);
        let batched_secs = time_best(REPS, || {
            std::hint::black_box(driver.energies(&points).unwrap());
        });
        let model = predict_batched(&chip, &cfg, &ansatz.bind(&theta), points.len());
        let row = SweepRow {
            n,
            points: points.len(),
            serial_secs,
            batched_secs,
            speedup: serial_secs / batched_secs,
            model_speedup: model.speedup,
        };
        table.row(&[
            n.to_string(),
            row.points.to_string(),
            fmt_secs(row.serial_secs),
            fmt_secs(row.batched_secs),
            format!("{:.2}x", row.speedup),
            format!("{:.2}x", row.model_speedup),
        ]);
        rows.push(row);
    }
    table.print();
}

/// GD on the TFIM: a handful of iterations must descend toward the
/// dense ground energy.
fn convergence_smoke() -> (f64, f64, f64) {
    let n = 6;
    let h = Hamiltonian::ising_chain(n, 1.0, 0.7);
    let ansatz = hardware_efficient_ansatz(n, 2);
    let p = ansatz.n_params();
    let driver = VqeDriver::new(ansatz, &h);
    let theta0: Vec<f64> = (0..p).map(|j| 0.25 + 0.11 * (j % 5) as f64).collect();
    let result = driver.minimize_gd(&theta0, 20, 0.1).unwrap();
    let ground = h.ground_energy(n);
    println!();
    println!(
        "E18: convergence smoke — n = {n}, 20 GD iterations: E {:.6} -> {:.6} \
         (exact ground {:.6})",
        result.energies[0], result.energy, ground
    );
    (result.energies[0], result.energy, ground)
}

fn write_json(reduction: &[ReductionRow], sweep: &[SweepRow], smoke: (f64, f64, f64)) {
    let mut red_body = String::new();
    for (i, r) in reduction.iter().enumerate() {
        let _ = write!(
            red_body,
            "    {{\"n\": {}, \"terms\": {}, \"sweeps\": {}, \"per_term_secs\": {:.9}, \
             \"fused_secs\": {:.9}, \"speedup\": {:.4}, \"model_per_term_secs\": {:.9}, \
             \"model_fused_secs\": {:.9}, \"model_speedup\": {:.4}}}{}",
            r.n,
            r.terms,
            r.sweeps,
            r.per_term_secs,
            r.fused_secs,
            r.speedup,
            r.model_per_term_secs,
            r.model_fused_secs,
            r.model_speedup,
            if i + 1 < reduction.len() { ",\n" } else { "" },
        );
    }
    let mut sweep_body = String::new();
    for (i, r) in sweep.iter().enumerate() {
        let _ = write!(
            sweep_body,
            "    {{\"n\": {}, \"points\": {}, \"serial_secs\": {:.9}, \
             \"batched_secs\": {:.9}, \"speedup\": {:.4}, \"model_speedup\": {:.4}}}{}",
            r.n,
            r.points,
            r.serial_secs,
            r.batched_secs,
            r.speedup,
            r.model_speedup,
            if i + 1 < sweep.len() { ",\n" } else { "" },
        );
    }
    let at14 = reduction.iter().find(|r| r.n == 14);
    let host_speedup = at14.map_or(0.0, |r| r.speedup);
    let model_speedup = at14.map_or(0.0, |r| r.model_speedup);
    let meets = host_speedup >= 2.0 && model_speedup >= 2.0;
    let (e_first, e_final, ground) = smoke;
    let json = format!(
        "{{\n  \"experiment\": \"e18_variational\",\n  \"headline\": {{\n\
         \x20   \"host_threads\": {},\n\
         \x20   \"fused_reduction_speedup_n14\": {host_speedup:.4},\n\
         \x20   \"model_reduction_speedup_n14\": {model_speedup:.4},\n\
         \x20   \"meets_2x_at_n14\": {meets},\n\
         \x20   \"vqe_smoke\": {{\"first_energy\": {e_first:.9}, \"final_energy\": {e_final:.9}, \
         \"exact_ground\": {ground:.9}}},\n\
         \x20   \"note\": \"fused = compiled sweep-sharing SIMD reduction; per-term = one \
         scalar sweep per Pauli string; the model prices the baseline on A64FX scalar FP \
         pipes (simd_bits=64) and the fused path on full SVE, matching the host pairing\"\n\
         \x20 }},\n  \"reduction\": [\n{red_body}\n  ],\n  \"sweep\": [\n{sweep_body}\n  ]\n}}\n",
        threads(),
    );
    let _ = std::fs::create_dir_all("results");
    match std::fs::write("results/BENCH_variational.json", &json) {
        Ok(()) => println!("\nwrote results/BENCH_variational.json"),
        Err(e) => eprintln!("\ncould not write results/BENCH_variational.json: {e}"),
    }
}

fn main() {
    let mut reduction = Vec::new();
    bench_reduction(&mut reduction);
    let mut sweep = Vec::new();
    bench_sweep(&mut sweep);
    let smoke = convergence_smoke();

    println!();
    println!("Expected shape: the reduction gain is structural — the TFIM's 2n-1 terms");
    println!("reduce in n+1 shared-basis sweeps instead of 2n-1 per-term sweeps, and each");
    println!("fused sweep runs vectorized. Host and model agree on the ratio because both");
    println!("paths are bandwidth-bound: fewer full-state passes is fewer bytes, whatever");
    println!("the memory system. The sweep-batching gain mirrors E14: per-point planning");
    println!("and gate-stream fetch amortize across the 2p+1 members of one iteration.");

    write_json(&reduction, &sweep, smoke);
}
