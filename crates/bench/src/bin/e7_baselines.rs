//! E7 — Simulation-strategy baseline comparison.
//!
//! QuEST-style gate-by-gate vs Aer-style fusion vs cache blocking, on
//! shallow and deep circuits, host-measured and A64FX-modelled side by
//! side.
//!
//! Expected shape: naive is competitive on shallow circuits (fusion's
//! matrix build cost isn't amortized); fusion wins clearly on deep
//! circuits; blocking wins when the run is all low-qubit gates and the
//! state exceeds L2.

use a64fx_model::timing::ExecConfig;
use a64fx_model::ChipParams;
use qcs_bench::{checksum, fmt_secs, time_best, Table};
use qcs_core::circuit::Circuit;
use qcs_core::config::SimConfig;
use qcs_core::fusion::fuse;
use qcs_core::library;
use qcs_core::perf::{predict_circuit, predict_fused};
use qcs_core::sim::Strategy;
use qcs_core::state::StateVector;

fn bench(name: &str, c: &Circuit) {
    let chip = ChipParams::a64fx();
    let cfg = ExecConfig::full_chip();
    println!();
    println!("E7: {name} — n = {}, {} gates", c.n_qubits(), c.len());
    let mut table = Table::new(&["strategy", "host time", "model time (A64FX)", "sweeps"]);

    let strategies: Vec<(String, Strategy)> = vec![
        ("naive (QuEST-like)".into(), Strategy::Naive),
        ("fused k=4 (Aer-like)".into(), Strategy::Fused { max_k: 4 }),
        ("blocked 2^13".into(), Strategy::Blocked { block_qubits: 13 }),
    ];
    for (label, strat) in strategies {
        let sim = SimConfig::new().strategy(strat).build().unwrap();
        let mut sweeps = 0;
        let host = time_best(2, || {
            let mut s = StateVector::zero(c.n_qubits());
            let r = sim.run(c, &mut s).unwrap();
            sweeps = r.sweeps;
            std::hint::black_box(checksum(s.amplitudes()));
        });
        let model_secs = match strat {
            Strategy::Fused { max_k } => {
                let plan = fuse(c, max_k);
                predict_fused(&chip, &cfg, &plan, c.n_qubits()).seconds
            }
            Strategy::Blocked { .. } => {
                // Blocking leaves per-gate arithmetic unchanged but cuts
                // state sweeps (and hence traffic) to the blocked run
                // count — scale the naive prediction by the sweep ratio.
                let naive = predict_circuit(&chip, &cfg, c);
                naive.seconds * sweeps as f64 / naive.sweeps.max(1) as f64
            }
            Strategy::Naive => predict_circuit(&chip, &cfg, c).seconds,
            Strategy::Planned { block_qubits, max_k } => {
                let plan = qcs_core::plan::plan_circuit(c, block_qubits, max_k);
                qcs_core::perf::predict_planned(&chip, &cfg, &plan).seconds
            }
            // Not in the fixed-strategy table above.
            Strategy::Auto => unreachable!("e7 benches fixed strategies only"),
        };
        table.row(&[label, fmt_secs(host), fmt_secs(model_secs), sweeps.to_string()]);
    }
    table.print();
}

fn model_only(name: &str, c: &Circuit) {
    let chip = ChipParams::a64fx();
    let cfg = ExecConfig::full_chip();
    println!();
    println!("E7 (modelled, n = {}): {name} — {} gates", c.n_qubits(), c.len());
    let mut table = Table::new(&["strategy", "model time", "vs naive"]);
    let naive = predict_circuit(&chip, &cfg, c);
    table.row(&["naive".into(), fmt_secs(naive.seconds), "1.00×".into()]);
    let plan = fuse(c, 4);
    let fused = predict_fused(&chip, &cfg, &plan, c.n_qubits());
    table.row(&[
        "fused k=4".into(),
        fmt_secs(fused.seconds),
        format!("{:.2}×", naive.seconds / fused.seconds),
    ]);
    table.print();
}

fn main() {
    let n = 18u32;
    bench("shallow: 1 Hadamard layer", &library::hadamard_layers(n, 1));
    bench("deep: 12 rotation layers", &library::rotation_layers(n, 12, 0.41));
    bench("deep + entangling: random depth 24", &library::random_circuit(n, 24, 13));
    bench("low-qubit run: 10 rotation layers on 12 qubits of 20", &{
        let mut c = Circuit::new(20);
        for l in 0..10 {
            for q in 0..12 {
                c.rx(q, 0.1 * (l + 1) as f64);
            }
        }
        c
    });

    println!();
    println!("At this host's cache-resident sizes the comparison is compute-shaped; the");
    println!("paper-scale (HBM-bound) regime from the model:");
    model_only("deep: 12 rotation layers", &library::rotation_layers(26, 12, 0.41));
    model_only("shallow: 1 Hadamard layer", &library::hadamard_layers(26, 1));
    println!();
    println!("Expected shape: in the HBM-bound regime fusion speedup ≈ sweep-count ratio");
    println!("(×3 when k=4 groups absorb ~3 gates each); the host's cache-resident runs");
    println!("invert this because fused 2^k×2^k arithmetic is the bottleneck there.");
}
