//! Shared infrastructure for the experiment harness.
//!
//! Each `src/bin/eN_*.rs` binary regenerates one reconstructed
//! table/figure (see DESIGN.md's experiment index). This library holds
//! the pieces they share: wall-clock measurement, table rendering, and
//! the address-stream replayer that validates the analytical traffic
//! model against the executable cache simulator (E6).

use std::time::Instant;

use a64fx_model::cache::MemoryHierarchy;
use qcs_core::complex::C64;
use qcs_core::kernels::index::insert_zero_bit;
use qcs_core::state::StateVector;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Wall-clock a closure: one warm-up call, then the minimum of `reps`
/// timed calls (minimum filters scheduler noise for short kernels).
pub fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut best = f64::MAX;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// A deterministic random state for benchmarking.
pub fn bench_state(n: u32, seed: u64) -> StateVector {
    let mut rng = StdRng::seed_from_u64(seed);
    StateVector::random(n, &mut rng)
}

/// Render a fixed-width text table (the harness's "figure").
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Table {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Column widths: max of header and cells.
    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }

    /// Print to stdout with a separator line under the header.
    pub fn print(&self) {
        let w = self.widths();
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = w[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.headers));
        println!("{}", w.iter().map(|&x| "-".repeat(x)).collect::<Vec<_>>().join("  "));
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
    }
}

/// Format seconds with an adaptive unit.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Format bytes/s as GB/s.
pub fn fmt_gbs(bps: f64) -> String {
    format!("{:.1} GB/s", bps / 1e9)
}

/// Effective memory traffic of one dense 1q sweep on `n` qubits
/// (read + write every amplitude).
pub fn sweep_bytes(n: u32) -> u64 {
    (1u64 << n) * 32
}

/// Replay the exact address stream of a dense 1-qubit gate sweep through
/// a cache hierarchy (base address 0, 16 B amplitudes).
pub fn replay_1q_stream(hier: &mut MemoryHierarchy, n: u32, t: u32) {
    let half = 1usize << (n - 1);
    let bit = 1u64 << t;
    for i in 0..half {
        let i0 = insert_zero_bit(i, t) as u64;
        let i1 = i0 | bit;
        hier.access(i0 * 16, 16, false);
        hier.access(i1 * 16, 16, false);
        hier.access(i0 * 16, 16, true);
        hier.access(i1 * 16, 16, true);
    }
}

/// Replay the address stream of a controlled 1q gate (control `c`,
/// target `t`): only control-set amplitudes are touched.
pub fn replay_controlled_stream(hier: &mut MemoryHierarchy, n: u32, c: u32, t: u32) {
    let quarter = 1usize << (n - 2);
    let (lo, hi) = if c < t { (c, t) } else { (t, c) };
    let cbit = 1u64 << c;
    let tbit = 1u64 << t;
    for i in 0..quarter {
        let base = qcs_core::kernels::index::insert_two_zero_bits(i, lo, hi) as u64;
        let i0 = base | cbit;
        let i1 = i0 | tbit;
        hier.access(i0 * 16, 16, false);
        hier.access(i1 * 16, 16, false);
        hier.access(i0 * 16, 16, true);
        hier.access(i1 * 16, 16, true);
    }
}

/// Sum of |amp|² — cheap correctness guard inside benches (optimizer
/// cannot drop a sweep whose result feeds this).
pub fn checksum(amps: &[C64]) -> f64 {
    amps.iter().map(|a| a.norm_sqr()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use a64fx_model::ChipParams;

    #[test]
    fn table_renders() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["333".into(), "4".into()]);
        assert_eq!(t.widths(), vec![3, 4]);
        t.print(); // smoke: no panic
    }

    #[test]
    fn fmt_units() {
        assert_eq!(fmt_secs(2.5), "2.500 s");
        assert_eq!(fmt_secs(2.5e-3), "2.500 ms");
        assert_eq!(fmt_secs(2.5e-6), "2.500 µs");
        assert_eq!(fmt_secs(2.5e-9), "2.5 ns");
        assert_eq!(fmt_gbs(256.0e9), "256.0 GB/s");
    }

    #[test]
    fn time_best_positive() {
        let t = time_best(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(t > 0.0);
    }

    #[test]
    fn replay_matches_analytic_traffic_cold() {
        // Dense 1q sweep over a state far beyond L2: measured memory
        // traffic must equal the analytical 2 × state bytes (fills +
        // writebacks), within the tail of unevicted dirty lines.
        let chip = ChipParams::a64fx();
        let n = 21u32; // 32 MiB state > 8 MiB L2
        for t in [2u32, 12, 20] {
            let mut hier = MemoryHierarchy::new(chip.l1d, chip.l2);
            replay_1q_stream(&mut hier, n, t);
            hier.drain();
            let measured = hier.stats().l2_mem_bytes;
            let expected = sweep_bytes(n);
            let ratio = measured as f64 / expected as f64;
            assert!(
                (0.98..1.02).contains(&ratio),
                "t={t}: measured {measured} vs expected {expected} (ratio {ratio})"
            );
        }
    }

    #[test]
    fn replay_cache_resident_state_has_little_mem_traffic() {
        let chip = ChipParams::a64fx();
        let n = 15u32; // 512 KiB < 8 MiB L2
        let mut hier = MemoryHierarchy::new(chip.l1d, chip.l2);
        replay_1q_stream(&mut hier, n, 3); // warm
        hier.reset_stats();
        replay_1q_stream(&mut hier, n, 3);
        assert_eq!(hier.stats().l2_mem_bytes, 0, "L2-resident sweep must not hit memory");
    }

    #[test]
    fn controlled_replay_high_control_halves_traffic() {
        let chip = ChipParams::a64fx();
        let n = 20u32;
        let mut hi = MemoryHierarchy::new(chip.l1d, chip.l2);
        replay_controlled_stream(&mut hi, n, 12, 5);
        hi.drain();
        let mut lo = MemoryHierarchy::new(chip.l1d, chip.l2);
        replay_controlled_stream(&mut lo, n, 1, 5);
        lo.drain();
        let hi_bytes = hi.stats().l2_mem_bytes as f64;
        let lo_bytes = lo.stats().l2_mem_bytes as f64;
        let ratio = lo_bytes / hi_bytes;
        assert!(
            (1.9..2.1).contains(&ratio),
            "low control should touch ~2× the lines: {lo_bytes} vs {hi_bytes}"
        );
    }
}
