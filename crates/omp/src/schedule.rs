//! OpenMP worksharing schedules.
//!
//! Reproduces the iteration-assignment rules of
//! `#pragma omp for schedule(...)`:
//!
//! * `Static { chunk: None }` — one contiguous block per thread (OpenMP's
//!   default static schedule).
//! * `Static { chunk: Some(c) }` — block-cyclic: thread `t` executes chunks
//!   `t, t+T, t+2T, …` of size `c`. The chunk size is the "thread stride"
//!   axis studied in the authors' miniapp paper.
//! * `Dynamic { chunk }` — threads grab the next `chunk` iterations from a
//!   shared counter.
//! * `Guided { min_chunk }` — like dynamic but the grabbed chunk shrinks
//!   proportionally to the remaining work.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A worksharing schedule, mirroring OpenMP's `schedule` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Contiguous block per thread (`None`) or block-cyclic with the given
    /// chunk size.
    Static { chunk: Option<usize> },
    /// First-come-first-served chunks of the given size.
    Dynamic { chunk: usize },
    /// Shrinking chunks, never below `min_chunk`.
    Guided { min_chunk: usize },
}

impl Schedule {
    /// The OpenMP default: `schedule(static)`.
    pub fn default_static() -> Schedule {
        Schedule::Static { chunk: None }
    }
}

impl Default for Schedule {
    fn default() -> Self {
        Schedule::default_static()
    }
}

/// Renders in the same `kind[:chunk]` syntax the `FromStr` impl
/// accepts, so configs are round-trippable and self-describing.
impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Schedule::Static { chunk: None } => write!(f, "static"),
            Schedule::Static { chunk: Some(c) } => write!(f, "static:{c}"),
            Schedule::Dynamic { chunk } => write!(f, "dynamic:{chunk}"),
            Schedule::Guided { min_chunk } => write!(f, "guided:{min_chunk}"),
        }
    }
}

impl std::str::FromStr for Schedule {
    type Err = String;

    /// Parse the OpenMP-style `kind[:chunk]` syntax used by the CLI:
    /// `static`, `static:<chunk>`, `dynamic[:<chunk>]`, `guided[:<min>]`.
    fn from_str(s: &str) -> Result<Schedule, String> {
        let (kind, chunk) = match s.split_once(':') {
            Some((k, c)) => {
                let c: usize = c.parse().map_err(|e| format!("schedule chunk `{c}`: {e}"))?;
                if c == 0 {
                    return Err("schedule chunk must be at least 1 (it also sets the \
                                (member x block) cell granularity of batched runs)"
                        .to_string());
                }
                (k, Some(c))
            }
            None => (s, None),
        };
        match kind {
            "static" => Ok(Schedule::Static { chunk }),
            "dynamic" => Ok(Schedule::Dynamic { chunk: chunk.unwrap_or(64) }),
            "guided" => Ok(Schedule::Guided { min_chunk: chunk.unwrap_or(1) }),
            other => Err(format!(
                "unknown schedule `{other}` (valid: static | static:<chunk> | \
                 dynamic[:<chunk>] | guided[:<min_chunk>]; the same policy shards \
                 batched (member x block) work, so batch-size limits apply upstream)"
            )),
        }
    }
}

/// Shared per-region state for dynamic/guided scheduling.
#[derive(Debug)]
pub struct WorkCounter {
    next: AtomicUsize,
}

impl WorkCounter {
    pub fn new() -> WorkCounter {
        WorkCounter { next: AtomicUsize::new(0) }
    }

    /// Claim the next `chunk` iterations of `0..len`; returns the claimed
    /// sub-range or `None` when exhausted.
    pub fn claim(&self, len: usize, chunk: usize) -> Option<Range<usize>> {
        debug_assert!(chunk > 0);
        let start = self.next.fetch_add(chunk, Ordering::Relaxed);
        if start >= len {
            None
        } else {
            Some(start..(start + chunk).min(len))
        }
    }

    /// Claim a guided chunk: size `max(remaining / (2 * n_threads),
    /// min_chunk)`, recomputed under contention via CAS.
    pub fn claim_guided(
        &self,
        len: usize,
        n_threads: usize,
        min_chunk: usize,
    ) -> Option<Range<usize>> {
        let min_chunk = min_chunk.max(1);
        loop {
            let start = self.next.load(Ordering::Relaxed);
            if start >= len {
                return None;
            }
            let remaining = len - start;
            let chunk = (remaining / (2 * n_threads.max(1))).max(min_chunk).min(remaining);
            match self.next.compare_exchange_weak(
                start,
                start + chunk,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(start..start + chunk),
                Err(_) => continue,
            }
        }
    }
}

impl Default for WorkCounter {
    fn default() -> Self {
        WorkCounter::new()
    }
}

/// The contiguous block `schedule(static)` assigns to thread `t` of `n`
/// over `range`.
///
/// Matches OpenMP: the first `len % n` threads get `⌈len/n⌉` iterations,
/// the rest `⌊len/n⌋`.
pub fn static_block(range: &Range<usize>, t: usize, n: usize) -> Range<usize> {
    let len = range.len();
    let base = len / n;
    let rem = len % n;
    let (start, size) = if t < rem {
        (t * (base + 1), base + 1)
    } else {
        (rem * (base + 1) + (t - rem) * base, base)
    };
    let s = range.start + start;
    s..s + size
}

/// Iterator over the block-cyclic chunks `schedule(static, c)` assigns to
/// thread `t` of `n` over `range`.
pub fn static_cyclic(
    range: Range<usize>,
    chunk: usize,
    t: usize,
    n: usize,
) -> impl Iterator<Item = Range<usize>> {
    debug_assert!(chunk > 0);
    let len = range.len();
    let start = range.start;
    (0..)
        .map(move |k| {
            let lo = (t + k * n) * chunk;
            let hi = (lo + chunk).min(len);
            (lo, hi)
        })
        .take_while(move |&(lo, _)| lo < len)
        .map(move |(lo, hi)| start + lo..start + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_block_partitions_exactly() {
        for len in [0usize, 1, 7, 48, 100, 101] {
            for n in [1usize, 2, 3, 7, 12, 48] {
                let mut covered = vec![0u8; len];
                for t in 0..n {
                    for i in static_block(&(10..10 + len), t, n) {
                        covered[i - 10] += 1;
                    }
                }
                assert!(covered.iter().all(|&c| c == 1), "len={len} n={n}");
            }
        }
    }

    #[test]
    fn static_block_balanced() {
        // 10 iterations over 4 threads: 3,3,2,2.
        let sizes: Vec<usize> = (0..4).map(|t| static_block(&(0..10), t, 4).len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    fn static_cyclic_partitions_exactly() {
        for len in [0usize, 1, 5, 48, 99] {
            for n in [1usize, 2, 5, 8] {
                for chunk in [1usize, 2, 7] {
                    let mut covered = vec![0u8; len];
                    for t in 0..n {
                        for r in static_cyclic(5..5 + len, chunk, t, n) {
                            for i in r {
                                covered[i - 5] += 1;
                            }
                        }
                    }
                    assert!(covered.iter().all(|&c| c == 1), "len={len} n={n} chunk={chunk}");
                }
            }
        }
    }

    #[test]
    fn static_cyclic_round_robin_order() {
        // 8 iterations, chunk 2, 2 threads: t0 gets [0,2) and [4,6).
        let chunks: Vec<Range<usize>> = static_cyclic(0..8, 2, 0, 2).collect();
        assert_eq!(chunks, vec![0..2, 4..6]);
        let chunks: Vec<Range<usize>> = static_cyclic(0..8, 2, 1, 2).collect();
        assert_eq!(chunks, vec![2..4, 6..8]);
    }

    #[test]
    fn dynamic_counter_partitions_exactly() {
        let wc = WorkCounter::new();
        let mut covered = [0u8; 23];
        while let Some(r) = wc.claim(23, 5) {
            for i in r {
                covered[i] += 1;
            }
        }
        assert!(covered.iter().all(|&c| c == 1));
    }

    #[test]
    fn dynamic_counter_exhausts() {
        let wc = WorkCounter::new();
        let mut n = 0;
        while wc.claim(10, 3).is_some() {
            n += 1;
        }
        assert_eq!(n, 4); // 3+3+3+1
        assert!(wc.claim(10, 3).is_none());
    }

    #[test]
    fn guided_chunks_shrink() {
        let wc = WorkCounter::new();
        let mut sizes = Vec::new();
        while let Some(r) = wc.claim_guided(1000, 4, 8) {
            sizes.push(r.len());
        }
        assert_eq!(sizes.iter().sum::<usize>(), 1000);
        // First chunk is remaining/(2*4) = 125; sizes are non-increasing
        // until they hit min_chunk.
        assert_eq!(sizes[0], 125);
        assert!(sizes.windows(2).all(|w| w[0] >= w[1] || w[1] == 8 || w[0] >= 8));
        assert!(*sizes.last().unwrap() <= 8);
    }

    #[test]
    fn guided_respects_min_chunk() {
        let wc = WorkCounter::new();
        let mut covered = [0u8; 37];
        while let Some(r) = wc.claim_guided(37, 16, 4) {
            assert!(r.len() >= 4 || r.end == 37, "tail chunk may be short: {r:?}");
            for i in r {
                covered[i] += 1;
            }
        }
        assert!(covered.iter().all(|&c| c == 1));
    }

    #[test]
    fn schedule_parse_round_trips() {
        for s in ["static", "static:7", "dynamic:32", "guided:4"] {
            let sched: Schedule = s.parse().unwrap();
            assert_eq!(sched.to_string(), s);
        }
        assert_eq!("dynamic".parse::<Schedule>().unwrap(), Schedule::Dynamic { chunk: 64 });
        assert_eq!("guided".parse::<Schedule>().unwrap(), Schedule::Guided { min_chunk: 1 });
        assert!("wavefront".parse::<Schedule>().unwrap_err().contains("valid:"));
        assert!("static:0".parse::<Schedule>().unwrap_err().contains("at least 1"));
    }

    #[test]
    fn zero_length_ranges() {
        assert_eq!(static_block(&(3..3), 0, 4).len(), 0);
        assert_eq!(static_cyclic(3..3, 2, 0, 4).count(), 0);
        assert!(WorkCounter::new().claim(0, 4).is_none());
        assert!(WorkCounter::new().claim_guided(0, 4, 1).is_none());
    }
}
