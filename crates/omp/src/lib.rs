//! `omp-par`: an OpenMP-like parallel runtime for loop-level parallelism.
//!
//! The A64FX studies this reproduction follows evaluate OpenMP worksharing:
//! number of threads, `schedule(static/dynamic/guided[, chunk])`, and the
//! assignment of threads to CMGs (core memory groups). `rayon`'s work
//! stealing deliberately hides all of that, so this crate implements the
//! OpenMP semantics directly:
//!
//! * [`ThreadPool`] — a persistent worker pool; the calling thread acts as
//!   the OpenMP *master* and participates in every parallel region.
//! * [`Schedule`] — `static` (block or block-cyclic), `dynamic`, `guided`
//!   chunking, with the exact OpenMP iteration-assignment rules.
//! * [`parallel_for`](ThreadPool::parallel_for) /
//!   [`parallel_reduce`](ThreadPool::parallel_reduce) — worksharing over an
//!   index range.
//! * [`affinity`] — thread→(CMG, core) placement maps (compact/scatter)
//!   used by the A64FX model to attribute memory traffic to CMG-local HBM2
//!   channels.
//! * [`batch`] — (member × block) worksharing for batched multi-circuit
//!   execution: the same [`Schedule`] policies applied to the flattened
//!   grid of independent state vectors × cache-resident slabs.

pub mod affinity;
pub mod batch;
pub mod pool;
pub mod schedule;

pub use affinity::{CmgTopology, Placement};
pub use batch::{for_each_cell, CellGrid};
pub use pool::{RegionObserver, ScheduleStats, ThreadPool};
pub use schedule::Schedule;
