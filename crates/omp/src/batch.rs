//! Batched (member × block) worksharing.
//!
//! A batched sweep applies the same gate to `members` independent state
//! vectors, each split into `blocks` disjoint slabs. The iteration
//! space is the rectangular grid of (member, block) cells; this module
//! flattens it member-major and workshares the flat index range under
//! the ordinary [`Schedule`] rules, so every policy the single-run
//! engine supports (`static`, `static:<chunk>`, `dynamic`, `guided`)
//! transfers to batched execution unchanged.
//!
//! Member-major order matters twice: a thread's contiguous share of a
//! static schedule covers consecutive blocks of the *same* member
//! (amplitude locality), and the serial fallback visits cells in
//! exactly the order a sequence of independent single runs would.

use std::ops::Range;

use crate::pool::ThreadPool;
use crate::schedule::Schedule;

/// The rectangular iteration space of one batched sweep: `members`
/// independent state vectors × `blocks` disjoint slabs per member,
/// flattened member-major (all of member 0's blocks, then member 1's).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellGrid {
    /// Independent state vectors in the batch.
    pub members: usize,
    /// Disjoint slabs per member (1 = the whole state is one cell).
    pub blocks: usize,
}

impl CellGrid {
    /// A grid of `members × blocks` cells.
    pub fn new(members: usize, blocks: usize) -> CellGrid {
        CellGrid { members, blocks }
    }

    /// One cell per member: full-state sweeps that cannot be split
    /// further without coordinating writes inside a member.
    pub fn per_member(members: usize) -> CellGrid {
        CellGrid { members, blocks: 1 }
    }

    /// Total cells.
    pub fn len(&self) -> usize {
        self.members * self.blocks
    }

    /// Whether the grid has no cells at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Map a flat member-major index back to its (member, block) cell.
    #[inline]
    pub fn cell(&self, idx: usize) -> (usize, usize) {
        debug_assert!(idx < self.len());
        (idx / self.blocks, idx % self.blocks)
    }
}

/// Shard the grid's cells across the pool under `sched`, calling
/// `body(member, block)` exactly once per cell. Without a pool the
/// cells run inline, member-major — the order B sequential single runs
/// would use. The pool's region barrier means every cell has finished
/// when this returns.
pub fn for_each_cell<F>(pool: Option<&ThreadPool>, sched: Schedule, grid: CellGrid, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    if grid.is_empty() {
        return;
    }
    match pool {
        Some(pool) => pool.parallel_for(0..grid.len(), sched, |r: Range<usize>| {
            for idx in r {
                let (m, b) = grid.cell(idx);
                body(m, b);
            }
        }),
        None => {
            for idx in 0..grid.len() {
                let (m, b) = grid.cell(idx);
                body(m, b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn all_schedules() -> Vec<Schedule> {
        vec![
            Schedule::Static { chunk: None },
            Schedule::Static { chunk: Some(3) },
            Schedule::Dynamic { chunk: 2 },
            Schedule::Guided { min_chunk: 1 },
        ]
    }

    #[test]
    fn cell_mapping_is_member_major() {
        let g = CellGrid::new(3, 4);
        assert_eq!(g.len(), 12);
        assert_eq!(g.cell(0), (0, 0));
        assert_eq!(g.cell(3), (0, 3));
        assert_eq!(g.cell(4), (1, 0));
        assert_eq!(g.cell(11), (2, 3));
    }

    #[test]
    fn serial_order_matches_sequential_runs() {
        let g = CellGrid::new(2, 3);
        let seen = std::sync::Mutex::new(Vec::new());
        for_each_cell(None, Schedule::default_static(), g, |m, b| {
            seen.lock().unwrap().push((m, b));
        });
        assert_eq!(*seen.lock().unwrap(), vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]);
    }

    #[test]
    fn every_cell_visited_exactly_once() {
        for threads in [1usize, 2, 4, 7] {
            let pool = ThreadPool::new(threads);
            for sched in all_schedules() {
                for (members, blocks) in [(1usize, 1usize), (4, 1), (1, 8), (5, 7), (16, 16)] {
                    let grid = CellGrid::new(members, blocks);
                    let hits: Vec<AtomicUsize> =
                        (0..grid.len()).map(|_| AtomicUsize::new(0)).collect();
                    for_each_cell(Some(&pool), sched, grid, |m, b| {
                        hits[m * blocks + b].fetch_add(1, Ordering::Relaxed);
                    });
                    assert!(
                        hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                        "threads={threads} sched={sched:?} {members}x{blocks}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_grids_are_noops() {
        let pool = ThreadPool::new(2);
        for grid in [CellGrid::new(0, 5), CellGrid::new(5, 0), CellGrid::new(0, 0)] {
            assert!(grid.is_empty());
            for_each_cell(Some(&pool), Schedule::default_static(), grid, |_, _| {
                panic!("no cells should run");
            });
            for_each_cell(None, Schedule::default_static(), grid, |_, _| {
                panic!("no cells should run");
            });
        }
    }
}
