//! A persistent worker pool with OpenMP parallel-region semantics.
//!
//! The calling thread is the *master* (OpenMP thread 0) and participates in
//! every region; `n_threads - 1` persistent workers cover the rest. A
//! region is a borrowed closure run once per thread with that thread's
//! index — exactly `#pragma omp parallel`. Worksharing
//! ([`ThreadPool::parallel_for`], [`ThreadPool::parallel_reduce`]) layers
//! the [`Schedule`] rules on top.
//!
//! Dispatch hands workers a raw pointer to the borrowed region closure.
//! This is sound because the master blocks until every worker has
//! acknowledged completion before the region returns, so the closure
//! outlives all uses (the same invariant `std::thread::scope` enforces,
//! without re-spawning threads per region).

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::schedule::{static_block, static_cyclic, Schedule, WorkCounter};

/// Per-thread observation hook for worksharing regions.
///
/// When installed on a pool ([`ThreadPool::set_observer`]), every
/// [`ThreadPool::parallel_for`] / [`ThreadPool::parallel_for_indexed`]
/// region reports, once per participating thread, how long that thread
/// was busy inside its share and how many chunks/iterations it executed.
/// This is the per-thread clock the telemetry layer aggregates into
/// busy-time and load-balance statistics without touching kernel code.
///
/// Implementations must be cheap and wait-free (typically a handful of
/// relaxed atomic adds): the callback runs on the worker threads
/// immediately after their share completes, before the region barrier
/// releases the master.
pub trait RegionObserver: Send + Sync {
    /// One thread finished its share of a worksharing region.
    fn worksharing(&self, thread: usize, busy_nanos: u64, chunks: usize, iters: usize);
}

/// A region closure: called with the thread index.
type RegionFn<'a> = dyn Fn(usize) + Sync + 'a;

/// Message sent to workers.
enum Msg {
    /// Run the region at this pointer, as thread `thread_idx`.
    Run { region: *const RegionFn<'static>, thread_idx: usize },
    /// Shut down the worker.
    Exit,
}

// SAFETY: the pointer is only dereferenced while the master blocks in
// `run_region`, which keeps the pointee alive; Sync bounds on the closure
// make shared calls safe.
unsafe impl Send for Msg {}

/// Result of one worker's region execution.
enum Ack {
    Done,
    Panicked(Box<dyn std::any::Any + Send>),
}

/// A persistent pool of `n_threads - 1` workers plus the calling master
/// thread.
pub struct ThreadPool {
    n_threads: usize,
    senders: Vec<Sender<Msg>>,
    ack_rx: Receiver<Ack>,
    handles: Vec<std::thread::JoinHandle<()>>,
    observer: Mutex<Option<Arc<dyn RegionObserver>>>,
}

impl ThreadPool {
    /// Create a pool that runs regions on `n_threads` threads total
    /// (including the caller). `n_threads` must be at least 1.
    pub fn new(n_threads: usize) -> ThreadPool {
        ThreadPool::named(n_threads, "omp")
    }

    /// Like [`ThreadPool::new`], but worker threads are named
    /// `<name>-worker-<i>` — so a dedicated pool (e.g. the job server's
    /// simulation workers) is distinguishable in thread dumps and
    /// profilers from the default `omp-worker-*` pools.
    pub fn named(n_threads: usize, name: &str) -> ThreadPool {
        assert!(n_threads >= 1, "a pool needs at least the master thread");
        let (ack_tx, ack_rx) = unbounded::<Ack>();
        let mut senders = Vec::with_capacity(n_threads - 1);
        let mut handles = Vec::with_capacity(n_threads - 1);
        for w in 1..n_threads {
            let (tx, rx) = bounded::<Msg>(1);
            let ack = ack_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("{name}-worker-{w}"))
                .spawn(move || worker_loop(rx, ack))
                .expect("spawn pool worker");
            senders.push(tx);
            handles.push(handle);
        }
        ThreadPool { n_threads, senders, ack_rx, handles, observer: Mutex::new(None) }
    }

    /// Total threads in the pool (master + workers).
    pub fn num_threads(&self) -> usize {
        self.n_threads
    }

    /// Install (or with `None`, remove) the worksharing observer. The
    /// cost when no observer is installed is one uncontended read lock
    /// per region — nothing on the per-iteration path.
    pub fn set_observer(&self, observer: Option<Arc<dyn RegionObserver>>) {
        *self.observer.lock() = observer;
    }

    /// The currently installed observer, if any.
    pub fn observer(&self) -> Option<Arc<dyn RegionObserver>> {
        self.observer.lock().clone()
    }

    /// Run `region(thread_idx)` once on every thread, blocking until all
    /// have finished — `#pragma omp parallel`.
    ///
    /// If any thread panics, the panic is re-raised on the master after
    /// all threads have finished the region.
    pub fn run_region<'a, F>(&self, region: F)
    where
        F: Fn(usize) + Sync + 'a,
    {
        if self.n_threads == 1 {
            region(0);
            return;
        }
        let region_ref: &RegionFn<'a> = &region;
        // SAFETY: we erase the lifetime to ship the pointer to workers; the
        // blocking ack loop below guarantees no worker touches it after
        // this function returns.
        let region_ptr: *const RegionFn<'static> = unsafe {
            std::mem::transmute::<*const RegionFn<'a>, *const RegionFn<'static>>(region_ref)
        };
        for (w, tx) in self.senders.iter().enumerate() {
            tx.send(Msg::Run { region: region_ptr, thread_idx: w + 1 }).expect("worker hung up");
        }
        // The master participates as thread 0, and must not unwind past
        // the ack loop.
        let master_result = catch_unwind(AssertUnwindSafe(|| region_ref(0)));
        let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
        for _ in 0..self.senders.len() {
            match self.ack_rx.recv().expect("worker hung up") {
                Ack::Done => {}
                Ack::Panicked(p) => {
                    if first_panic.is_none() {
                        first_panic = Some(p);
                    }
                }
            }
        }
        if let Err(p) = master_result {
            resume_unwind(p);
        }
        if let Some(p) = first_panic {
            resume_unwind(p);
        }
    }

    /// Workshare `range` across the pool under `sched`, calling
    /// `body(chunk)` for each assigned chunk — `#pragma omp for`.
    pub fn parallel_for<'a, F>(&self, range: Range<usize>, sched: Schedule, body: F)
    where
        F: Fn(Range<usize>) + Sync + 'a,
    {
        let n = self.n_threads;
        let counter = WorkCounter::new();
        let range_ref = &range;
        let body_ref = &body;
        let counter_ref = &counter;
        let obs = self.observer();
        self.run_region(move |t| match &obs {
            None => run_share_fn(range_ref.clone(), sched, t, n, counter_ref, body_ref),
            Some(o) => {
                let t0 = Instant::now();
                let (mut chunks, mut iters) = (0usize, 0usize);
                let mut adapter = |r: Range<usize>| {
                    chunks += 1;
                    iters += r.len();
                    body_ref(r);
                };
                run_share(range_ref.clone(), sched, t, n, counter_ref, &mut adapter);
                o.worksharing(t, t0.elapsed().as_nanos() as u64, chunks, iters);
            }
        });
    }

    /// Like [`ThreadPool::parallel_for`], but the body also receives the
    /// executing thread's index — for thread-local accumulators and
    /// instrumentation.
    pub fn parallel_for_indexed<'a, F>(&self, range: Range<usize>, sched: Schedule, body: F)
    where
        F: Fn(usize, Range<usize>) + Sync + 'a,
    {
        let n = self.n_threads;
        let counter = WorkCounter::new();
        let range_ref = &range;
        let body_ref = &body;
        let counter_ref = &counter;
        let obs = self.observer();
        self.run_region(move |t| {
            let t0 = Instant::now();
            let (mut chunks, mut iters) = (0usize, 0usize);
            let mut adapter = |r: Range<usize>| {
                chunks += 1;
                iters += r.len();
                body_ref(t, r);
            };
            run_share(range_ref.clone(), sched, t, n, counter_ref, &mut adapter);
            if let Some(o) = &obs {
                o.worksharing(t, t0.elapsed().as_nanos() as u64, chunks, iters);
            }
        });
    }

    /// Workshare with per-thread load statistics: how many chunks and
    /// iterations each thread executed — the observability the
    /// scheduling experiments (E2) need to explain dynamic-vs-static
    /// behaviour.
    pub fn parallel_for_stats<'a, F>(
        &self,
        range: Range<usize>,
        sched: Schedule,
        body: F,
    ) -> ScheduleStats
    where
        F: Fn(Range<usize>) + Sync + 'a,
    {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let chunks: Vec<AtomicUsize> = (0..self.n_threads).map(|_| AtomicUsize::new(0)).collect();
        let iters: Vec<AtomicUsize> = (0..self.n_threads).map(|_| AtomicUsize::new(0)).collect();
        self.parallel_for_indexed(range, sched, |t, r| {
            chunks[t].fetch_add(1, Ordering::Relaxed);
            iters[t].fetch_add(r.len(), Ordering::Relaxed);
            body(r);
        });
        ScheduleStats {
            chunks_per_thread: chunks.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            iters_per_thread: iters.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        }
    }

    /// Workshared map-reduce: each thread folds its chunks into a local
    /// accumulator (`identity()` + `fold`); the master combines the
    /// per-thread accumulators **in thread order**, so the result is
    /// deterministic for a fixed thread count.
    pub fn parallel_reduce<'a, T, I, F, C>(
        &self,
        range: Range<usize>,
        sched: Schedule,
        identity: I,
        fold: F,
        combine: C,
    ) -> T
    where
        T: Send + 'a,
        I: Fn() -> T + Sync + 'a,
        F: Fn(T, Range<usize>) -> T + Sync + 'a,
        C: Fn(T, T) -> T + 'a,
    {
        let n = self.n_threads;
        let locals: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let counter = WorkCounter::new();
        {
            let range_ref = &range;
            let locals_ref = &locals;
            let identity_ref = &identity;
            let fold_ref = &fold;
            let counter_ref = &counter;
            self.run_region(move |t| {
                let mut acc = identity_ref();
                run_share(range_ref.clone(), sched, t, n, counter_ref, &mut |r: Range<usize>| {
                    // `fold` moves the accumulator; route through Option to
                    // keep the closure Fn-compatible.
                    let taken = std::mem::replace(&mut acc, identity_ref());
                    acc = fold_ref(taken, r);
                });
                *locals_ref[t].lock() = Some(acc);
            });
        }
        let mut result = identity();
        for slot in locals {
            if let Some(local) = slot.into_inner() {
                result = combine(result, local);
            }
        }
        result
    }
}

/// Per-thread load report from [`ThreadPool::parallel_for_stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleStats {
    /// Chunks executed by each thread.
    pub chunks_per_thread: Vec<usize>,
    /// Iterations executed by each thread.
    pub iters_per_thread: Vec<usize>,
}

impl ScheduleStats {
    /// Total iterations executed.
    pub fn total_iters(&self) -> usize {
        self.iters_per_thread.iter().sum()
    }

    /// Load imbalance: max/mean iterations per thread (1.0 = perfect).
    pub fn imbalance(&self) -> f64 {
        let max = *self.iters_per_thread.iter().max().unwrap_or(&0) as f64;
        let mean = self.total_iters() as f64 / self.iters_per_thread.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Execute thread `t`'s share of `range` under `sched`.
fn run_share(
    range: Range<usize>,
    sched: Schedule,
    t: usize,
    n: usize,
    counter: &WorkCounter,
    body: &mut dyn FnMut(Range<usize>),
) {
    match sched {
        Schedule::Static { chunk: None } => {
            let blk = static_block(&range, t, n);
            if !blk.is_empty() {
                body(blk);
            }
        }
        Schedule::Static { chunk: Some(c) } => {
            for blk in static_cyclic(range, c.max(1), t, n) {
                body(blk);
            }
        }
        Schedule::Dynamic { chunk } => {
            let len = range.len();
            while let Some(r) = counter.claim(len, chunk.max(1)) {
                body(range.start + r.start..range.start + r.end);
            }
        }
        Schedule::Guided { min_chunk } => {
            let len = range.len();
            while let Some(r) = counter.claim_guided(len, n, min_chunk) {
                body(range.start + r.start..range.start + r.end);
            }
        }
    }
}

/// Immutable-body adapter for `run_share` (the common parallel_for path).
fn run_share_fn(
    range: Range<usize>,
    sched: Schedule,
    t: usize,
    n: usize,
    counter: &WorkCounter,
    body: &(dyn Fn(Range<usize>) + Sync),
) {
    let mut adapter = |r: Range<usize>| body(r);
    run_share(range, sched, t, n, counter, &mut adapter);
}

fn worker_loop(rx: Receiver<Msg>, ack: Sender<Ack>) {
    loop {
        match rx.recv() {
            Ok(Msg::Run { region, thread_idx }) => {
                // SAFETY: see `run_region` — master keeps the closure alive
                // until our ack is received.
                let f = unsafe { &*region };
                let result = catch_unwind(AssertUnwindSafe(|| f(thread_idx)));
                let msg = match result {
                    Ok(()) => Ack::Done,
                    Err(p) => Ack::Panicked(p),
                };
                if ack.send(msg).is_err() {
                    return; // pool dropped mid-ack; nothing to do
                }
            }
            Ok(Msg::Exit) | Err(_) => return,
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(Msg::Exit);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A process-wide shared pool sized to the host's parallelism, for callers
/// that don't manage their own.
pub fn global_pool() -> Arc<ThreadPool> {
    use std::sync::OnceLock;
    static POOL: OnceLock<Arc<ThreadPool>> = OnceLock::new();
    POOL.get_or_init(|| {
        let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Arc::new(ThreadPool::new(n))
    })
    .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn region_runs_every_thread_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.run_region(|t| {
            hits[t].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let hit = AtomicUsize::new(0);
        pool.run_region(|t| {
            assert_eq!(t, 0);
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pool_reusable_across_regions() {
        let pool = ThreadPool::new(3);
        let count = AtomicUsize::new(0);
        for _ in 0..10 {
            pool.run_region(|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(count.load(Ordering::Relaxed), 30);
    }

    fn check_sum(pool: &ThreadPool, n: usize, sched: Schedule) {
        let data: Vec<u64> = (0..n as u64).collect();
        let total = AtomicU64::new(0);
        pool.parallel_for(0..n, sched, |r| {
            let s: u64 = data[r].iter().sum();
            total.fetch_add(s, Ordering::Relaxed);
        });
        let expect = (n as u64).saturating_sub(1) * (n as u64) / 2;
        assert_eq!(total.load(Ordering::Relaxed), expect, "{sched:?} n={n}");
    }

    #[test]
    fn parallel_for_all_schedules_cover_range() {
        let pool = ThreadPool::new(5);
        for n in [0usize, 1, 4, 5, 1000, 1001] {
            check_sum(&pool, n, Schedule::Static { chunk: None });
            check_sum(&pool, n, Schedule::Static { chunk: Some(3) });
            check_sum(&pool, n, Schedule::Dynamic { chunk: 7 });
            check_sum(&pool, n, Schedule::Guided { min_chunk: 2 });
        }
    }

    #[test]
    fn parallel_for_disjoint_writes() {
        // Each index written exactly once ⇒ no chunk overlap.
        let pool = ThreadPool::new(7);
        let n = 4097;
        let data: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        for sched in [
            Schedule::Static { chunk: None },
            Schedule::Static { chunk: Some(5) },
            Schedule::Dynamic { chunk: 13 },
            Schedule::Guided { min_chunk: 4 },
        ] {
            pool.parallel_for(0..n, sched, |r| {
                for i in r {
                    data[i].fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        for d in &data {
            assert_eq!(d.load(Ordering::Relaxed), 4);
        }
    }

    #[test]
    fn parallel_reduce_sum() {
        let pool = ThreadPool::new(4);
        let n = 100_000usize;
        let sum = pool.parallel_reduce(
            0..n,
            Schedule::Static { chunk: None },
            || 0u64,
            |acc, r| acc + r.map(|i| i as u64).sum::<u64>(),
            |a, b| a + b,
        );
        assert_eq!(sum, (n as u64 - 1) * n as u64 / 2);
    }

    #[test]
    fn parallel_reduce_deterministic_float_order() {
        // Combining in thread order makes FP reduction reproducible run to
        // run for a fixed thread count.
        let pool = ThreadPool::new(6);
        let n = 10_000usize;
        let run = || {
            pool.parallel_reduce(
                0..n,
                Schedule::Static { chunk: None },
                || 0.0f64,
                |acc, r| acc + r.map(|i| (i as f64).sqrt()).sum::<f64>(),
                |a, b| a + b,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn panic_in_region_propagates() {
        let pool = ThreadPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_region(|t| {
                if t == 2 {
                    panic!("worker bang");
                }
            });
        }));
        assert!(result.is_err());
        // Pool must still be usable after a panic.
        let count = AtomicUsize::new(0);
        pool.run_region(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn panic_on_master_propagates() {
        let pool = ThreadPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_region(|t| {
                if t == 0 {
                    panic!("master bang");
                }
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn global_pool_is_shared() {
        let a = global_pool();
        let b = global_pool();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.num_threads() >= 1);
    }

    #[test]
    fn indexed_body_sees_valid_thread_ids() {
        let pool = ThreadPool::new(4);
        let seen = Mutex::new(std::collections::HashSet::new());
        pool.parallel_for_indexed(0..1000, Schedule::Static { chunk: None }, |t, _| {
            assert!(t < 4);
            seen.lock().insert(t);
        });
        // Static default: every thread gets one chunk.
        assert_eq!(seen.lock().len(), 4);
    }

    #[test]
    fn stats_cover_the_range_exactly() {
        let pool = ThreadPool::new(3);
        for sched in [
            Schedule::Static { chunk: None },
            Schedule::Static { chunk: Some(7) },
            Schedule::Dynamic { chunk: 11 },
            Schedule::Guided { min_chunk: 5 },
        ] {
            let stats = pool.parallel_for_stats(0..1000, sched, |_r| {});
            assert_eq!(stats.total_iters(), 1000, "{sched:?}");
            assert_eq!(stats.iters_per_thread.len(), 3);
        }
    }

    #[test]
    fn static_default_is_perfectly_balanced() {
        let pool = ThreadPool::new(4);
        let stats = pool.parallel_for_stats(0..1000, Schedule::Static { chunk: None }, |_| {});
        assert!(stats.imbalance() <= 250.0 / 250.0 + 0.01, "{stats:?}");
        // One chunk per thread.
        assert!(stats.chunks_per_thread.iter().all(|&c| c == 1));
    }

    #[test]
    fn observer_reports_every_thread_and_full_range() {
        struct Acc {
            busy: Vec<AtomicU64>,
            chunks: AtomicUsize,
            iters: AtomicUsize,
        }
        impl RegionObserver for Acc {
            fn worksharing(&self, thread: usize, busy_nanos: u64, chunks: usize, iters: usize) {
                self.busy[thread].fetch_add(busy_nanos.max(1), Ordering::Relaxed);
                self.chunks.fetch_add(chunks, Ordering::Relaxed);
                self.iters.fetch_add(iters, Ordering::Relaxed);
            }
        }
        let pool = ThreadPool::new(4);
        let acc = Arc::new(Acc {
            busy: (0..4).map(|_| AtomicU64::new(0)).collect(),
            chunks: AtomicUsize::new(0),
            iters: AtomicUsize::new(0),
        });
        pool.set_observer(Some(acc.clone()));
        pool.parallel_for(0..1000, Schedule::Static { chunk: None }, |r| {
            std::hint::black_box(r.len());
        });
        assert_eq!(acc.iters.load(Ordering::Relaxed), 1000);
        assert_eq!(acc.chunks.load(Ordering::Relaxed), 4);
        for b in &acc.busy {
            assert!(b.load(Ordering::Relaxed) > 0, "every thread reports busy time");
        }
        // Removing the observer stops the reports.
        pool.set_observer(None);
        pool.parallel_for(0..100, Schedule::Dynamic { chunk: 8 }, |_| {});
        assert_eq!(acc.iters.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn static_cyclic_produces_many_chunks() {
        let pool = ThreadPool::new(2);
        let stats = pool.parallel_for_stats(0..100, Schedule::Static { chunk: Some(5) }, |_| {});
        assert_eq!(stats.chunks_per_thread.iter().sum::<usize>(), 20);
    }

    #[test]
    fn dynamic_schedule_balances_skewed_work() {
        // With heavily skewed per-index cost, dynamic scheduling must let
        // multiple threads contribute. We verify all work is done and at
        // least 2 distinct threads ran chunks (statistically certain with
        // 64 chunks).
        let pool = ThreadPool::new(4);
        let ran_by = Mutex::new(std::collections::HashSet::new());
        let done = AtomicUsize::new(0);
        pool.parallel_for(0..64, Schedule::Dynamic { chunk: 1 }, |r| {
            // Identify the current thread by its pool name / id hash.
            let id = std::thread::current().id();
            ran_by.lock().insert(format!("{id:?}"));
            std::thread::sleep(std::time::Duration::from_micros(200));
            done.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(done.load(Ordering::Relaxed), 64);
        assert!(ran_by.lock().len() >= 2, "dynamic scheduling used only one thread");
    }
}
