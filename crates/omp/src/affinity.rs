//! CMG-aware thread placement.
//!
//! The A64FX groups its 48 compute cores into four *Core Memory Groups*
//! (CMGs), each with a private 8 MiB L2 slice and its own HBM2 stack
//! (256 GB/s). Where threads are placed relative to CMGs determines how
//! much of the chip's bandwidth a parallel loop can reach — the axis the
//! authors probe with `compact` vs `scatter`-style bindings.
//!
//! This module computes the *logical* placement map (thread → (CMG,
//! core-in-CMG)); the performance consequences are evaluated by
//! `a64fx-model`, not by actually pinning OS threads (commodity hosts
//! don't have CMGs to pin to).

/// The CMG/core structure of a chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CmgTopology {
    /// Number of core memory groups (A64FX: 4).
    pub n_cmgs: usize,
    /// Compute cores per CMG (A64FX: 12).
    pub cores_per_cmg: usize,
}

impl CmgTopology {
    /// The A64FX topology: 4 CMGs × 12 compute cores.
    pub const A64FX: CmgTopology = CmgTopology { n_cmgs: 4, cores_per_cmg: 12 };

    /// Total compute cores.
    pub fn total_cores(self) -> usize {
        self.n_cmgs * self.cores_per_cmg
    }
}

/// Thread→core binding policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Fill a CMG before moving to the next (`OMP_PROC_BIND=close`):
    /// threads 0..11 on CMG0, 12..23 on CMG1, …
    Compact,
    /// Round-robin across CMGs (`OMP_PROC_BIND=spread`): thread `t` on CMG
    /// `t mod n_cmgs`. Maximizes reachable bandwidth at low thread counts.
    Scatter,
}

/// A placement of `n_threads` onto a topology.
#[derive(Debug, Clone)]
pub struct AffinityMap {
    topology: CmgTopology,
    /// `cmg_of[t]` = CMG index of thread `t`.
    cmg_of: Vec<usize>,
    /// `core_of[t]` = global core index of thread `t`.
    core_of: Vec<usize>,
}

impl AffinityMap {
    /// Compute the placement of `n_threads` threads under `policy`.
    ///
    /// Panics if `n_threads` exceeds the topology's core count — the
    /// A64FX runs one thread per core (no SMT).
    pub fn new(topology: CmgTopology, n_threads: usize, policy: Placement) -> AffinityMap {
        assert!(
            n_threads <= topology.total_cores(),
            "A64FX has no SMT: at most {} threads on this topology, got {}",
            topology.total_cores(),
            n_threads
        );
        let mut cmg_of = Vec::with_capacity(n_threads);
        let mut core_of = Vec::with_capacity(n_threads);
        match policy {
            Placement::Compact => {
                for t in 0..n_threads {
                    let cmg = t / topology.cores_per_cmg;
                    cmg_of.push(cmg);
                    core_of.push(t);
                }
            }
            Placement::Scatter => {
                // Thread t → CMG (t % n_cmgs), next free core in that CMG.
                let mut next_core_in_cmg = vec![0usize; topology.n_cmgs];
                for t in 0..n_threads {
                    let cmg = t % topology.n_cmgs;
                    let core_in_cmg = next_core_in_cmg[cmg];
                    next_core_in_cmg[cmg] += 1;
                    cmg_of.push(cmg);
                    core_of.push(cmg * topology.cores_per_cmg + core_in_cmg);
                }
            }
        }
        AffinityMap { topology, cmg_of, core_of }
    }

    /// Number of threads placed.
    pub fn n_threads(&self) -> usize {
        self.cmg_of.len()
    }

    /// The topology this map was built for.
    pub fn topology(&self) -> CmgTopology {
        self.topology
    }

    /// CMG index of thread `t`.
    pub fn cmg_of(&self, t: usize) -> usize {
        self.cmg_of[t]
    }

    /// Global core index of thread `t`.
    pub fn core_of(&self, t: usize) -> usize {
        self.core_of[t]
    }

    /// Number of distinct CMGs that have at least one thread.
    pub fn active_cmgs(&self) -> usize {
        let mut seen = vec![false; self.topology.n_cmgs];
        for &c in &self.cmg_of {
            seen[c] = true;
        }
        seen.iter().filter(|&&s| s).count()
    }

    /// Thread counts per CMG.
    pub fn threads_per_cmg(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.topology.n_cmgs];
        for &c in &self.cmg_of {
            counts[c] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a64fx_topology() {
        assert_eq!(CmgTopology::A64FX.total_cores(), 48);
    }

    #[test]
    fn compact_fills_cmgs_in_order() {
        let m = AffinityMap::new(CmgTopology::A64FX, 24, Placement::Compact);
        assert_eq!(m.cmg_of(0), 0);
        assert_eq!(m.cmg_of(11), 0);
        assert_eq!(m.cmg_of(12), 1);
        assert_eq!(m.cmg_of(23), 1);
        assert_eq!(m.active_cmgs(), 2);
        assert_eq!(m.threads_per_cmg(), vec![12, 12, 0, 0]);
    }

    #[test]
    fn scatter_spreads_across_cmgs() {
        let m = AffinityMap::new(CmgTopology::A64FX, 4, Placement::Scatter);
        assert_eq!(m.active_cmgs(), 4);
        assert_eq!(m.threads_per_cmg(), vec![1, 1, 1, 1]);
        // Same thread count compact reaches only one CMG's bandwidth.
        let c = AffinityMap::new(CmgTopology::A64FX, 4, Placement::Compact);
        assert_eq!(c.active_cmgs(), 1);
    }

    #[test]
    fn scatter_core_assignment_unique() {
        let m = AffinityMap::new(CmgTopology::A64FX, 48, Placement::Scatter);
        let mut cores: Vec<usize> = (0..48).map(|t| m.core_of(t)).collect();
        cores.sort_unstable();
        cores.dedup();
        assert_eq!(cores.len(), 48, "no core is double-booked");
    }

    #[test]
    fn full_chip_placements_agree_on_counts() {
        for policy in [Placement::Compact, Placement::Scatter] {
            let m = AffinityMap::new(CmgTopology::A64FX, 48, policy);
            assert_eq!(m.threads_per_cmg(), vec![12, 12, 12, 12], "{policy:?}");
            assert_eq!(m.active_cmgs(), 4);
        }
    }

    #[test]
    #[should_panic(expected = "no SMT")]
    fn oversubscription_panics() {
        let _ = AffinityMap::new(CmgTopology::A64FX, 49, Placement::Compact);
    }

    #[test]
    fn single_thread() {
        let m = AffinityMap::new(CmgTopology::A64FX, 1, Placement::Scatter);
        assert_eq!(m.n_threads(), 1);
        assert_eq!(m.cmg_of(0), 0);
        assert_eq!(m.active_cmgs(), 1);
    }
}
