//! Plain-old-data marshalling for typed message payloads.
//!
//! Messages travel between rank threads as `Vec<u8>`. [`Pod`] marks types
//! whose byte representation is a complete, padding-free description of
//! the value, so slices can be copied in and out without a serialization
//! framework (the same contract MPI datatypes rely on).

/// Marker for types that can be sent as raw bytes.
///
/// # Safety
///
/// Implementors must be `Copy`, have no padding bytes, and be valid for
/// every bit pattern of their size (no niches, no pointers). All primitive
/// numeric types qualify; `#[repr(C)]` structs of such fields with no
/// padding qualify.
pub unsafe trait Pod: Copy + Send + 'static {}

unsafe impl Pod for u8 {}
unsafe impl Pod for i8 {}
unsafe impl Pod for u16 {}
unsafe impl Pod for i16 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for i32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for i64 {}
unsafe impl Pod for f32 {}
unsafe impl Pod for f64 {}
unsafe impl Pod for usize {}
unsafe impl Pod for isize {}
unsafe impl<T: Pod, const N: usize> Pod for [T; N] {}

/// Copy a typed slice into a fresh byte vector.
pub fn to_bytes<T: Pod>(data: &[T]) -> Vec<u8> {
    let n = std::mem::size_of_val(data);
    let mut out = vec![0u8; n];
    // SAFETY: Pod guarantees no padding and byte-copyable representation;
    // lengths match by construction.
    unsafe {
        std::ptr::copy_nonoverlapping(data.as_ptr() as *const u8, out.as_mut_ptr(), n);
    }
    out
}

/// Reinterpret a byte vector as a typed vector.
///
/// Panics if the byte length is not a multiple of `size_of::<T>()` —
/// that is a type mismatch between sender and receiver, which MPI would
/// also surface as a truncation error.
pub fn from_bytes<T: Pod>(bytes: &[u8]) -> Vec<T> {
    let sz = std::mem::size_of::<T>();
    assert!(sz > 0, "zero-sized Pod types are not meaningful payloads");
    assert!(
        bytes.len().is_multiple_of(sz),
        "payload of {} bytes is not a whole number of {}-byte elements",
        bytes.len(),
        sz
    );
    let n = bytes.len() / sz;
    let mut out = Vec::<T>::with_capacity(n);
    // SAFETY: destination capacity is n elements; Pod allows any bit
    // pattern; copy is into freshly allocated, properly aligned storage.
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr() as *mut u8, n * sz);
        out.set_len(n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_f64() {
        let xs = vec![1.5f64, -2.25, f64::MIN_POSITIVE, 0.0, f64::MAX];
        let b = to_bytes(&xs);
        assert_eq!(b.len(), 40);
        let back: Vec<f64> = from_bytes(&b);
        assert_eq!(back, xs);
    }

    #[test]
    fn roundtrip_u8_identity() {
        let xs: Vec<u8> = (0..=255).collect();
        assert_eq!(from_bytes::<u8>(&to_bytes(&xs)), xs);
    }

    #[test]
    fn roundtrip_array_pairs() {
        let xs = vec![[1.0f64, 2.0], [3.0, 4.0]];
        let back: Vec<[f64; 2]> = from_bytes(&to_bytes(&xs));
        assert_eq!(back, xs);
    }

    #[test]
    fn roundtrip_nan_bit_patterns() {
        let xs = vec![f64::NAN, -f64::NAN];
        let back: Vec<f64> = from_bytes(&to_bytes(&xs));
        assert_eq!(back[0].to_bits(), xs[0].to_bits());
        assert_eq!(back[1].to_bits(), xs[1].to_bits());
    }

    #[test]
    fn empty_slice() {
        let xs: Vec<u64> = vec![];
        let b = to_bytes(&xs);
        assert!(b.is_empty());
        assert!(from_bytes::<u64>(&b).is_empty());
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn misaligned_length_panics() {
        let _ = from_bytes::<u64>(&[0u8; 12]);
    }
}
