//! Collective operations built over point-to-point messaging.
//!
//! Algorithms follow the textbook implementations MPI libraries use at
//! small-to-medium scale: binomial trees for `bcast`/`reduce`, linear
//! gather, recursive-doubling barrier, and direct-exchange `alltoall`.
//! All collectives use a reserved high tag range so they never collide
//! with user point-to-point traffic.

use crate::comm::Comm;
use crate::datatype::Pod;

/// Reserved tag base for collective traffic.
const COLL_TAG: u32 = 0xC011_0000;

/// Element-wise reduction operators for numeric collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Min,
    Max,
}

impl ReduceOp {
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
}

impl Comm {
    /// Synchronize all ranks (recursive doubling: ⌈log₂ n⌉ rounds).
    pub fn barrier(&mut self) {
        let n = self.size();
        let me = self.rank();
        let mut dist = 1;
        while dist < n {
            let peer = me ^ dist;
            if peer < n {
                let _ = self.sendrecv::<u8>(peer, COLL_TAG + 1, &[1]);
            } else {
                // Non-power-of-two worlds: ranks without a partner in this
                // round still participate in later rounds; pair the
                // orphan with rank 0 via an extra token to keep rounds
                // aligned.
                if me == 0 {
                    // No orphan handling needed when peer ≥ n for rank 0's
                    // partner — handled by the modulo pairing below.
                }
            }
            dist <<= 1;
        }
        // A final centralized confirmation round makes the barrier correct
        // for every world size (the doubling rounds above are then an
        // optimization, not a correctness requirement).
        if me == 0 {
            for r in 1..n {
                let _ = self.recv::<u8>(r, COLL_TAG + 2);
            }
            for r in 1..n {
                self.send(r, COLL_TAG + 3, &[1u8]);
            }
        } else {
            self.send(0, COLL_TAG + 2, &[1u8]);
            let _ = self.recv::<u8>(0, COLL_TAG + 3);
        }
    }

    /// Broadcast `data` from `root` to all ranks (binomial tree).
    pub fn bcast<T: Pod>(&mut self, root: usize, data: &mut Vec<T>) {
        let n = self.size();
        if n == 1 {
            return;
        }
        // Work in a root-relative rank space so any root works.
        let vrank = (self.rank() + n - root) % n;
        // Receive from parent (highest set bit).
        if vrank != 0 {
            let parent_v = vrank & (vrank - 1); // clear lowest set bit
            let parent = (parent_v + root) % n;
            *data = self.recv::<T>(parent, COLL_TAG + 4);
        }
        // Forward to children: vrank + 2^k for each k above our lowest
        // set bit (or all k for the root).
        let lowest = if vrank == 0 { usize::BITS } else { vrank.trailing_zeros() };
        let mut k = 0u32;
        while (1usize << k) < n {
            if k < lowest {
                let child_v = vrank | (1 << k);
                if child_v != vrank && child_v < n {
                    let child = (child_v + root) % n;
                    let payload = data.clone();
                    self.send(child, COLL_TAG + 4, &payload);
                }
            }
            k += 1;
        }
    }

    /// Gather each rank's `data` at `root`; returns `Some(concatenated)`
    /// at the root (rank order), `None` elsewhere.
    pub fn gather<T: Pod>(&mut self, root: usize, data: &[T]) -> Option<Vec<T>> {
        if self.rank() == root {
            let mut out = Vec::new();
            for r in 0..self.size() {
                if r == root {
                    out.extend_from_slice(data);
                } else {
                    let part = self.recv::<T>(r, COLL_TAG + 5);
                    out.extend(part);
                }
            }
            Some(out)
        } else {
            self.send(root, COLL_TAG + 5, data);
            None
        }
    }

    /// All ranks receive the concatenation of every rank's `data`
    /// (gather at 0 + bcast).
    pub fn allgather<T: Pod>(&mut self, data: &[T]) -> Vec<T> {
        let gathered = self.gather(0, data);
        let mut buf = gathered.unwrap_or_default();
        self.bcast(0, &mut buf);
        buf
    }

    /// Element-wise reduce of equal-length `f64` slices to `root`.
    pub fn reduce(&mut self, root: usize, op: ReduceOp, data: &[f64]) -> Option<Vec<f64>> {
        if self.rank() == root {
            let mut acc = data.to_vec();
            for r in 0..self.size() {
                if r == root {
                    continue;
                }
                let part = self.recv::<f64>(r, COLL_TAG + 6);
                assert_eq!(part.len(), acc.len(), "reduce length mismatch from rank {r}");
                for (a, b) in acc.iter_mut().zip(part) {
                    *a = op.apply(*a, b);
                }
            }
            Some(acc)
        } else {
            self.send(root, COLL_TAG + 6, data);
            None
        }
    }

    /// Element-wise allreduce (reduce to 0 + bcast). Deterministic: the
    /// root combines contributions in rank order.
    pub fn allreduce(&mut self, op: ReduceOp, data: &[f64]) -> Vec<f64> {
        let reduced = self.reduce(0, op, data);
        let mut buf = reduced.unwrap_or_default();
        self.bcast(0, &mut buf);
        buf
    }

    /// Scalar sum allreduce convenience.
    pub fn allreduce_scalar(&mut self, op: ReduceOp, x: f64) -> f64 {
        self.allreduce(op, &[x])[0]
    }

    /// Scatter: root splits `data` (one chunk per rank, equal length)
    /// and sends chunk `r` to rank `r`; every rank returns its chunk.
    pub fn scatter<T: Pod>(&mut self, root: usize, data: Option<&[T]>) -> Vec<T> {
        let n = self.size();
        if self.rank() == root {
            let data = data.expect("root must provide the scatter data");
            assert!(data.len().is_multiple_of(n), "scatter data must divide evenly across ranks");
            let chunk = data.len() / n;
            for r in 0..n {
                if r != root {
                    self.send(r, COLL_TAG + 8, &data[r * chunk..(r + 1) * chunk]);
                }
            }
            data[root * chunk..(root + 1) * chunk].to_vec()
        } else {
            self.recv::<T>(root, COLL_TAG + 8)
        }
    }

    /// Exclusive prefix scan (sum): rank `r` receives the sum of the
    /// values contributed by ranks `0..r` (rank 0 gets 0).
    pub fn exscan_sum(&mut self, x: f64) -> f64 {
        // Linear pipeline: rank r receives the prefix from r-1, forwards
        // prefix + x to r+1.
        let me = self.rank();
        let prefix = if me == 0 { 0.0 } else { self.recv::<f64>(me - 1, COLL_TAG + 9)[0] };
        if me + 1 < self.size() {
            self.send(me + 1, COLL_TAG + 9, &[prefix + x]);
        }
        prefix
    }

    /// Reduce-scatter (sum): element-wise sum of every rank's
    /// `data` (length = world size × `chunk`), with rank `r` receiving
    /// chunk `r` of the result.
    pub fn reduce_scatter_sum(&mut self, data: &[f64], chunk: usize) -> Vec<f64> {
        assert_eq!(data.len(), self.size() * chunk, "data must be world_size × chunk long");
        let summed = self.reduce(0, ReduceOp::Sum, data);
        let root_data = summed.unwrap_or_default();
        self.scatter(0, if self.rank() == 0 { Some(&root_data[..]) } else { None })
    }

    /// Personalized all-to-all: `chunks[r]` goes to rank `r`; returns the
    /// chunks received, indexed by source rank.
    #[allow(clippy::needless_range_loop)] // peer is a rank id, not just an index
    pub fn alltoall<T: Pod>(&mut self, chunks: &[Vec<T>]) -> Vec<Vec<T>> {
        let n = self.size();
        assert_eq!(chunks.len(), n, "alltoall needs one chunk per rank");
        let me = self.rank();
        let mut out: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
        out[me] = chunks[me].clone();
        // Pairwise exchange rounds (XOR schedule for power-of-two, plus a
        // linear fallback for the rest): here every pair (me, peer) simply
        // exchanges directly; channels are buffered so ordering is free.
        for peer in 0..n {
            if peer == me {
                continue;
            }
            self.send(peer, COLL_TAG + 7, &chunks[peer]);
        }
        for peer in 0..n {
            if peer == me {
                continue;
            }
            out[peer] = self.recv::<T>(peer, COLL_TAG + 7);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::World;

    #[test]
    fn barrier_completes_all_world_sizes() {
        for n in [1usize, 2, 3, 4, 5, 7, 8] {
            World::run(n, |c| {
                for _ in 0..3 {
                    c.barrier();
                }
            });
        }
    }

    #[test]
    fn bcast_from_every_root() {
        for n in [1usize, 2, 3, 4, 6, 8] {
            for root in 0..n {
                let results = World::run(n, move |c| {
                    let mut data =
                        if c.rank() == root { vec![root as u64, 17, 23] } else { Vec::new() };
                    c.bcast(root, &mut data);
                    data
                });
                for r in results {
                    assert_eq!(r, vec![root as u64, 17, 23], "n={n} root={root}");
                }
            }
        }
    }

    #[test]
    fn gather_concatenates_in_rank_order() {
        let results =
            World::run(4, |c| c.gather(2, &[c.rank() as u32 * 2, c.rank() as u32 * 2 + 1]));
        for (r, res) in results.iter().enumerate() {
            if r == 2 {
                assert_eq!(res.as_deref(), Some(&[0u32, 1, 2, 3, 4, 5, 6, 7][..]));
            } else {
                assert!(res.is_none());
            }
        }
    }

    #[test]
    fn allgather_everyone_sees_everything() {
        let results = World::run(5, |c| c.allgather(&[c.rank() as u64]));
        for r in results {
            assert_eq!(r, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn allreduce_sum_min_max() {
        let results = World::run(6, |c| {
            let x = c.rank() as f64 + 1.0; // 1..=6
            (
                c.allreduce_scalar(ReduceOp::Sum, x),
                c.allreduce_scalar(ReduceOp::Min, x),
                c.allreduce_scalar(ReduceOp::Max, x),
            )
        });
        for (s, mn, mx) in results {
            assert_eq!(s, 21.0);
            assert_eq!(mn, 1.0);
            assert_eq!(mx, 6.0);
        }
    }

    #[test]
    fn allreduce_vector_elementwise() {
        let results = World::run(3, |c| {
            let me = c.rank() as f64;
            c.allreduce(ReduceOp::Sum, &[me, 10.0 * me])
        });
        for r in results {
            assert_eq!(r, vec![3.0, 30.0]);
        }
    }

    #[test]
    fn allreduce_deterministic_ordering() {
        // Summation happens in rank order at the root: two runs give
        // bit-identical results even with rounding-sensitive values.
        let vals: Vec<f64> = (0..7).map(|r| 0.1 * (r as f64 + 1.0)).collect();
        let run = || {
            let vals = vals.clone();
            World::run(7, move |c| c.allreduce_scalar(ReduceOp::Sum, vals[c.rank()]))
        };
        let a = run();
        let b = run();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn alltoall_transposes() {
        let results = World::run(4, |c| {
            let me = c.rank() as u64;
            // chunk sent to rank r = [me*10 + r]
            let chunks: Vec<Vec<u64>> = (0..4).map(|r| vec![me * 10 + r as u64]).collect();
            c.alltoall(&chunks)
        });
        // Rank r receives from src s the value s*10 + r.
        for (r, recvd) in results.iter().enumerate() {
            for (s, chunk) in recvd.iter().enumerate() {
                assert_eq!(chunk, &vec![s as u64 * 10 + r as u64]);
            }
        }
    }

    #[test]
    fn alltoall_variable_sizes() {
        let results = World::run(3, |c| {
            let me = c.rank();
            // Send r copies of `me` to rank r.
            let chunks: Vec<Vec<u64>> = (0..3).map(|r| vec![me as u64; r]).collect();
            c.alltoall(&chunks)
        });
        for (r, recvd) in results.iter().enumerate() {
            for (s, chunk) in recvd.iter().enumerate() {
                assert_eq!(chunk.len(), r, "rank {r} from {s}");
                assert!(chunk.iter().all(|&v| v == s as u64));
            }
        }
    }

    #[test]
    fn reduce_non_root_gets_none() {
        let results = World::run(2, |c| c.reduce(0, ReduceOp::Sum, &[1.0]));
        assert_eq!(results[0], Some(vec![2.0]));
        assert_eq!(results[1], None);
    }

    #[test]
    fn scatter_distributes_chunks() {
        let results = World::run(4, |c| {
            let data: Vec<u64> = (0..8).collect();

            c.scatter(1, if c.rank() == 1 { Some(&data[..]) } else { None })
        });
        for (r, chunk) in results.iter().enumerate() {
            assert_eq!(chunk, &vec![2 * r as u64, 2 * r as u64 + 1]);
        }
    }

    #[test]
    fn exscan_computes_exclusive_prefixes() {
        let results = World::run(5, |c| c.exscan_sum((c.rank() + 1) as f64));
        // Contributions 1,2,3,4,5 → prefixes 0,1,3,6,10.
        assert_eq!(results, vec![0.0, 1.0, 3.0, 6.0, 10.0]);
    }

    #[test]
    fn reduce_scatter_sums_and_splits() {
        let results = World::run(3, |c| {
            // Rank r contributes [r, r, r, r, r, r] (3 ranks × chunk 2).
            let data = vec![c.rank() as f64; 6];
            c.reduce_scatter_sum(&data, 2)
        });
        // Element-wise sum = 0+1+2 = 3 everywhere; each rank gets 2 of them.
        for r in results {
            assert_eq!(r, vec![3.0, 3.0]);
        }
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn scatter_uneven_rejected() {
        // Only the root participates: the length assert fires before any
        // message is sent, so the other rank must not block in recv
        // (a blocked peer would stall thread::scope's join until the
        // substrate's recv timeout).
        World::run(2, |c| {
            if c.rank() == 0 {
                let data = [1u8, 2, 3];
                let _ = c.scatter(0, Some(&data[..]));
            }
        });
    }
}
