//! Property-based tests for the message-passing substrate.

use std::time::Duration;

use proptest::prelude::*;

use crate::collectives::ReduceOp;
use crate::comm::World;
use crate::fault::FaultPlan;

/// A hostile-but-fast plan: every fault class enabled at 20%, short
/// delays, aggressive acknowledgement timeout so retries fire quickly.
fn hostile_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        drop_p: 0.2,
        dup_p: 0.2,
        flip_p: 0.2,
        delay_p: 0.2,
        delay: Duration::from_micros(200),
        stall_p: 0.0,
        stall: Duration::ZERO,
        ack_timeout: Duration::from_millis(2),
        max_retries: 8,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any payload of f64 survives a round trip through a peer rank.
    #[test]
    fn payload_roundtrip_through_peer(
        data in prop::collection::vec(any::<f64>().prop_filter("finite", |x| x.is_finite()), 0..200),
    ) {
        let data2 = data.clone();
        let results = World::run(2, move |c| {
            if c.rank() == 0 {
                c.send(1, 0, &data2);
                Vec::new()
            } else {
                c.recv::<f64>(0, 0)
            }
        });
        prop_assert_eq!(&results[1], &data);
    }

    /// allgather returns identical, rank-ordered content on every rank,
    /// for any world size 1..=8 and any per-rank payload length.
    #[test]
    fn allgather_consistent(n in 1usize..=8, len in 0usize..16) {
        let results = World::run(n, move |c| {
            let mine: Vec<u64> = (0..len).map(|i| (c.rank() * 1000 + i) as u64).collect();
            c.allgather(&mine)
        });
        let expected: Vec<u64> = (0..n)
            .flat_map(|r| (0..len).map(move |i| (r * 1000 + i) as u64))
            .collect();
        for r in &results {
            prop_assert_eq!(r, &expected);
        }
    }

    /// allreduce(sum) equals the serial sum for any world size and data.
    #[test]
    fn allreduce_sum_matches_serial(
        n in 1usize..=8,
        vals in prop::collection::vec(-1.0e3f64..1.0e3, 8),
    ) {
        let vals_c = vals.clone();
        let results = World::run(n, move |c| c.allreduce_scalar(ReduceOp::Sum, vals_c[c.rank()]));
        let serial: f64 = vals[..n].iter().sum();
        for r in &results {
            prop_assert!((r - serial).abs() < 1e-9, "r={} serial={}", r, serial);
        }
    }

    /// alltoall is an exact transpose for any world size.
    #[test]
    fn alltoall_is_transpose(n in 1usize..=8) {
        let results = World::run(n, move |c| {
            let me = c.rank() as u64;
            let chunks: Vec<Vec<u64>> = (0..n).map(|r| vec![me * 100 + r as u64]).collect();
            c.alltoall(&chunks)
        });
        for (r, recvd) in results.iter().enumerate() {
            for (s, chunk) in recvd.iter().enumerate() {
                prop_assert_eq!(chunk[0], s as u64 * 100 + r as u64);
            }
        }
    }

    /// scatter partitions the root's data exactly.
    #[test]
    fn scatter_partitions(n in 1usize..=8, chunk in 1usize..8) {
        let results = World::run(n, move |c| {
            let data: Vec<u64> = (0..(n * chunk) as u64).collect();
            c.scatter(0, if c.rank() == 0 { Some(&data[..]) } else { None })
        });
        for (r, mine) in results.iter().enumerate() {
            let expect: Vec<u64> = ((r * chunk) as u64..((r + 1) * chunk) as u64).collect();
            prop_assert_eq!(mine, &expect);
        }
    }

    /// exscan yields exclusive prefix sums for arbitrary contributions.
    #[test]
    fn exscan_prefixes(n in 1usize..=8, vals in prop::collection::vec(-100.0f64..100.0, 8)) {
        let vals_c = vals.clone();
        let results = World::run(n, move |c| c.exscan_sum(vals_c[c.rank()]));
        let mut acc = 0.0;
        for (r, &got) in results.iter().enumerate() {
            prop_assert!((got - acc).abs() < 1e-9, "rank {}: {} vs {}", r, got, acc);
            acc += vals[r];
        }
    }

    /// The reliable path is transparent: for any seed and payload, a
    /// transfer over a lossy, duplicating, corrupting, delaying link
    /// delivers exactly what a fault-free link would.
    #[test]
    fn faulted_transfer_equals_fault_free(
        seed in any::<u64>(),
        data in prop::collection::vec(
            any::<f64>().prop_filter("finite", |x| x.is_finite()),
            0..128,
        ),
    ) {
        let data2 = data.clone();
        let results = World::run_faulted(2, Some(hostile_plan(seed)), move |c| {
            if c.rank() == 0 {
                c.send(1, 7, &data2);
                Vec::new()
            } else {
                c.recv::<f64>(0, 7)
            }
        });
        prop_assert_eq!(&results[1], &data);
    }

    /// Tag matching and out-of-order stashing survive fault-induced
    /// reordering and duplication: rank 1 receives the *second* tag
    /// first, forcing the first message through the stash, while the
    /// fault plan duplicates and delays envelopes underneath.
    #[test]
    fn tag_matching_survives_reordering_and_duplication(
        seed in any::<u64>(),
        a in prop::collection::vec(any::<u32>(), 1..64),
        b in prop::collection::vec(any::<u32>(), 1..64),
    ) {
        let (a2, b2) = (a.clone(), b.clone());
        let results = World::run_faulted(2, Some(hostile_plan(seed)), move |c| {
            if c.rank() == 0 {
                c.send(1, 0, &a2);
                c.send(1, 1, &b2);
                (Vec::new(), Vec::new())
            } else {
                // Receive in reverse tag order: message for tag 0 must
                // wait in the stash while we pull tag 1 past it.
                let second = c.recv::<u32>(0, 1);
                let first = c.recv::<u32>(0, 0);
                (first, second)
            }
        });
        prop_assert_eq!(&results[1].0, &a);
        prop_assert_eq!(&results[1].1, &b);
    }

    /// A faulted ring allreduce-style exchange produces the same values
    /// as the clean run for any world size.
    #[test]
    fn faulted_ring_matches_clean(seed in any::<u64>(), n in 2usize..=4) {
        let faulted = World::run_faulted(n, Some(hostile_plan(seed)), move |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            let mut token = vec![c.rank() as u64 * 11];
            for _ in 0..c.size() {
                c.send(next, 3, &token);
                token = c.recv::<u64>(prev, 3);
            }
            token[0]
        });
        for (r, &got) in faulted.iter().enumerate() {
            prop_assert_eq!(got, r as u64 * 11, "token must return home intact");
        }
    }

    /// bcast delivers the root's payload unchanged for every (n, root).
    #[test]
    fn bcast_delivers(n in 1usize..=8, root_seed in 0usize..8, len in 0usize..32) {
        let root = root_seed % n;
        let payload: Vec<u64> = (0..len as u64).map(|i| i * 3 + 1).collect();
        let payload_c = payload.clone();
        let results = World::run(n, move |c| {
            let mut buf = if c.rank() == root { payload_c.clone() } else { Vec::new() };
            c.bcast(root, &mut buf);
            buf
        });
        for r in &results {
            prop_assert_eq!(r, &payload);
        }
    }
}
