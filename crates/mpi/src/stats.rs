//! Communication accounting.
//!
//! Every byte a rank sends or receives is recorded here; the network model
//! converts these totals into predicted Tofu-D time. This is the bridge
//! between "what the algorithm communicated" (exact, measured in-process)
//! and "what it would cost on the real interconnect" (modelled).

use parking_lot::Mutex;

/// Per-rank communication counters.
///
/// `messages_*` and `bytes_*` count *logical* traffic — one unit per
/// `send`/`recv` pair regardless of how many physical transmissions the
/// reliable transport needed — so volume accounting is identical between
/// fault-free and fault-injected runs. The resilience counters below
/// record what the transport did to survive injected faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommStats {
    pub messages_sent: u64,
    pub messages_received: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    /// Histogram of destination ranks (index = dest).
    pub sends_by_dest: Vec<u64>,
    /// Retransmissions after a missed acknowledgement.
    pub retries: u64,
    /// Acknowledgement deadlines that expired (each triggers a retry or,
    /// on the final attempt, a transport failure).
    pub ack_timeouts: u64,
    /// Received envelopes discarded for a payload checksum mismatch.
    pub corrupt_dropped: u64,
    /// Received envelopes discarded as duplicates (already-seen seq).
    pub duplicates_dropped: u64,
    /// Faults the plan injected on this rank's outgoing transmissions.
    pub faults_injected: u64,
}

impl CommStats {
    pub(crate) fn record_send(&mut self, dest: usize, bytes: usize) {
        self.messages_sent += 1;
        self.bytes_sent += bytes as u64;
        if self.sends_by_dest.len() <= dest {
            self.sends_by_dest.resize(dest + 1, 0);
        }
        self.sends_by_dest[dest] += 1;
    }

    pub(crate) fn record_recv(&mut self, _src: usize, bytes: usize) {
        self.messages_received += 1;
        self.bytes_received += bytes as u64;
    }

    /// Counters accumulated since `baseline` was snapshotted
    /// (saturating, so a stale baseline cannot underflow).
    ///
    /// The distributed engine uses this for per-phase accounting: snapshot
    /// [`crate::comm::Comm::stats`] before an exchange phase, subtract
    /// after, and the difference is exactly what that phase moved.
    pub fn delta(&self, baseline: &CommStats) -> CommStats {
        let mut sends_by_dest: Vec<u64> = self.sends_by_dest.clone();
        for (d, &n) in baseline.sends_by_dest.iter().enumerate() {
            if d < sends_by_dest.len() {
                sends_by_dest[d] = sends_by_dest[d].saturating_sub(n);
            }
        }
        CommStats {
            messages_sent: self.messages_sent.saturating_sub(baseline.messages_sent),
            messages_received: self.messages_received.saturating_sub(baseline.messages_received),
            bytes_sent: self.bytes_sent.saturating_sub(baseline.bytes_sent),
            bytes_received: self.bytes_received.saturating_sub(baseline.bytes_received),
            sends_by_dest,
            retries: self.retries.saturating_sub(baseline.retries),
            ack_timeouts: self.ack_timeouts.saturating_sub(baseline.ack_timeouts),
            corrupt_dropped: self.corrupt_dropped.saturating_sub(baseline.corrupt_dropped),
            duplicates_dropped: self.duplicates_dropped.saturating_sub(baseline.duplicates_dropped),
            faults_injected: self.faults_injected.saturating_sub(baseline.faults_injected),
        }
    }

    /// Merge another rank's counters (for world-level aggregation).
    pub fn merge(&mut self, other: &CommStats) {
        self.messages_sent += other.messages_sent;
        self.messages_received += other.messages_received;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.retries += other.retries;
        self.ack_timeouts += other.ack_timeouts;
        self.corrupt_dropped += other.corrupt_dropped;
        self.duplicates_dropped += other.duplicates_dropped;
        self.faults_injected += other.faults_injected;
        if self.sends_by_dest.len() < other.sends_by_dest.len() {
            self.sends_by_dest.resize(other.sends_by_dest.len(), 0);
        }
        for (d, &n) in other.sends_by_dest.iter().enumerate() {
            self.sends_by_dest[d] += n;
        }
    }
}

/// Shared collector for a whole world's per-rank statistics.
#[derive(Debug)]
pub struct WorldStats {
    per_rank: Mutex<Vec<CommStats>>,
}

impl WorldStats {
    pub fn new(n_ranks: usize) -> WorldStats {
        WorldStats { per_rank: Mutex::new(vec![CommStats::default(); n_ranks]) }
    }

    /// Record rank `rank`'s final counters.
    pub fn absorb(&self, rank: usize, stats: &CommStats) {
        let mut g = self.per_rank.lock();
        g[rank] = stats.clone();
    }

    /// Snapshot all ranks' counters.
    pub fn snapshot(&self) -> Vec<CommStats> {
        self.per_rank.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_merge() {
        let mut a = CommStats::default();
        a.record_send(3, 100);
        a.record_send(3, 50);
        a.record_recv(1, 10);
        assert_eq!(a.messages_sent, 2);
        assert_eq!(a.bytes_sent, 150);
        assert_eq!(a.sends_by_dest[3], 2);

        let mut b = CommStats::default();
        b.record_send(5, 7);
        b.merge(&a);
        assert_eq!(b.messages_sent, 3);
        assert_eq!(b.bytes_sent, 157);
        assert_eq!(b.sends_by_dest[3], 2);
        assert_eq!(b.sends_by_dest[5], 1);
    }

    #[test]
    fn delta_subtracts_baseline() {
        let mut s = CommStats::default();
        s.record_send(1, 100);
        let base = s.clone();
        s.record_send(1, 50);
        s.record_send(2, 8);
        s.record_recv(1, 30);
        let d = s.delta(&base);
        assert_eq!(d.messages_sent, 2);
        assert_eq!(d.bytes_sent, 58);
        assert_eq!(d.messages_received, 1);
        assert_eq!(d.bytes_received, 30);
        assert_eq!(d.sends_by_dest[1], 1);
        assert_eq!(d.sends_by_dest[2], 1);
        // A stale (larger) baseline saturates instead of underflowing.
        let z = base.delta(&s);
        assert_eq!(z.messages_sent, 0);
        assert_eq!(z.bytes_sent, 0);
    }

    #[test]
    fn world_stats_snapshot() {
        let ws = WorldStats::new(2);
        let mut s = CommStats::default();
        s.record_send(0, 42);
        ws.absorb(1, &s);
        let snap = ws.snapshot();
        assert_eq!(snap[0], CommStats::default());
        assert_eq!(snap[1].bytes_sent, 42);
    }
}
