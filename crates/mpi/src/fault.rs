//! Deterministic fault injection for the message-passing substrate.
//!
//! A [`FaultPlan`] describes *which* transient faults a world injects
//! into its data messages — drops, delivery delays, duplications,
//! payload bit-flips, and sender stalls — and with what probability.
//! Every decision is a pure hash of `(seed, src, dest, seq, attempt)`,
//! so a faulted run is exactly reproducible regardless of thread
//! interleaving, and two runs with the same seed inject the same faults.
//!
//! The plan also carries the recovery parameters the transport uses to
//! *survive* those faults: the acknowledgement timeout (exponentially
//! backed off per attempt) and the retry budget. The final attempt of a
//! bounded retry sequence is always fault-free ("the network heals"), so
//! a plan can never make a correct program fail — it can only make it
//! slower, which is the whole point of measuring resilience overhead.
//!
//! Plans come from three places: explicitly via
//! [`crate::World::run_faulted`], or from the environment —
//! `QCS_FAULT_SPEC` (full grammar below) or `QCS_FAULT_SEED` alone
//! (default intensities). The spec grammar is a comma-separated list:
//!
//! ```text
//! drop=0.02,dup=0.02,flip=0.02,delay=0.05:1ms,stall=0.01:2ms,timeout=25ms,retries=6
//! ```
//!
//! Probabilities are in `[0, 1]`; durations take `ns`/`us`/`ms`/`s`
//! suffixes. Unlisted keys keep their defaults (zero probability).

use std::time::Duration;

/// Default acknowledgement timeout before a retransmission (base of the
/// exponential backoff).
pub const DEFAULT_ACK_TIMEOUT: Duration = Duration::from_millis(25);

/// Default retry budget: a message is transmitted at most `1 + retries`
/// times before the sender gives up.
pub const DEFAULT_MAX_RETRIES: u32 = 6;

/// A seeded, deterministic fault-injection plan for one world.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Root of every per-message hash draw.
    pub seed: u64,
    /// Probability a data transmission is silently dropped.
    pub drop_p: f64,
    /// Probability a data transmission is delivered twice.
    pub dup_p: f64,
    /// Probability one payload bit is flipped in flight.
    pub flip_p: f64,
    /// Probability delivery is delayed by [`FaultPlan::delay`].
    pub delay_p: f64,
    /// Delivery delay applied when the delay fault fires.
    pub delay: Duration,
    /// Probability the *sender* stalls before transmitting (models a
    /// descheduled / slow rank rather than a network fault).
    pub stall_p: f64,
    /// Stall length when the stall fault fires.
    pub stall: Duration,
    /// Base acknowledgement timeout; attempt `k` waits `2^k` times this.
    pub ack_timeout: Duration,
    /// Maximum retransmissions after the first attempt.
    pub max_retries: u32,
}

impl Default for FaultPlan {
    /// A fault-free plan: reliable transport machinery (checksums, ACKs,
    /// sequence numbers) active, zero injected faults.
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 0,
            drop_p: 0.0,
            dup_p: 0.0,
            flip_p: 0.0,
            delay_p: 0.0,
            delay: Duration::ZERO,
            stall_p: 0.0,
            stall: Duration::ZERO,
            ack_timeout: DEFAULT_ACK_TIMEOUT,
            max_retries: DEFAULT_MAX_RETRIES,
        }
    }
}

/// The faults drawn for one transmission attempt.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultDraw {
    /// Drop the transmission entirely.
    pub drop: bool,
    /// Deliver a second copy.
    pub duplicate: bool,
    /// Flip this bit offset (mod payload length) in the delivered copy.
    pub flip_bit: Option<u64>,
    /// Hold delivery back by this long.
    pub delay: Option<Duration>,
    /// Sender sleeps this long before transmitting.
    pub stall: Option<Duration>,
}

impl FaultDraw {
    /// Whether any fault fires in this draw.
    pub fn any(&self) -> bool {
        self.drop
            || self.duplicate
            || self.flip_bit.is_some()
            || self.delay.is_some()
            || self.stall.is_some()
    }
}

/// Errors from parsing a `QCS_FAULT_SPEC`-style string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError(pub String);

impl std::fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad fault spec: {}", self.0)
    }
}

impl std::error::Error for FaultSpecError {}

impl FaultPlan {
    /// The default transient-fault intensity used when only a seed is
    /// given (`QCS_FAULT_SEED` without `QCS_FAULT_SPEC`): 2% drops,
    /// duplications, and bit-flips, 5% deliveries delayed by 1 ms.
    pub fn default_intensity(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_p: 0.02,
            dup_p: 0.02,
            flip_p: 0.02,
            delay_p: 0.05,
            delay: Duration::from_millis(1),
            ..FaultPlan::default()
        }
    }

    /// Parse the comma-separated spec grammar (see module docs).
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan, FaultSpecError> {
        let mut plan = FaultPlan { seed, ..FaultPlan::default() };
        for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| FaultSpecError(format!("`{item}` is not key=value")))?;
            match key.trim() {
                "drop" => plan.drop_p = parse_prob(key, value)?,
                "dup" => plan.dup_p = parse_prob(key, value)?,
                "flip" => plan.flip_p = parse_prob(key, value)?,
                "delay" => (plan.delay_p, plan.delay) = parse_prob_duration(key, value)?,
                "stall" => (plan.stall_p, plan.stall) = parse_prob_duration(key, value)?,
                "timeout" => plan.ack_timeout = parse_duration(key, value)?,
                "retries" => {
                    plan.max_retries =
                        value.trim().parse().map_err(|e| FaultSpecError(format!("{key}: {e}")))?;
                }
                other => {
                    return Err(FaultSpecError(format!(
                        "unknown key `{other}` (valid: drop dup flip delay stall timeout retries)"
                    )))
                }
            }
        }
        if plan.ack_timeout.is_zero() {
            return Err(FaultSpecError("timeout must be positive".to_string()));
        }
        Ok(plan)
    }

    /// Resolve a plan from the environment: `QCS_FAULT_SPEC` (parsed,
    /// seeded by `QCS_FAULT_SEED` or 0) or `QCS_FAULT_SEED` alone
    /// (default intensities). `None` when neither variable is set.
    ///
    /// Panics on a malformed spec — a misconfigured environment should
    /// fail loudly, not silently run fault-free.
    pub fn from_env() -> Option<FaultPlan> {
        let seed = match std::env::var("QCS_FAULT_SEED") {
            Ok(s) => Some(s.trim().parse::<u64>().unwrap_or_else(|e| {
                panic!("QCS_FAULT_SEED `{s}` is not an unsigned integer: {e}")
            })),
            Err(_) => None,
        };
        match std::env::var("QCS_FAULT_SPEC") {
            Ok(spec) => Some(
                FaultPlan::parse(&spec, seed.unwrap_or(0))
                    .unwrap_or_else(|e| panic!("QCS_FAULT_SPEC: {e}")),
            ),
            Err(_) => seed.map(FaultPlan::default_intensity),
        }
    }

    /// Whether this plan can inject any fault at all.
    pub fn injects_faults(&self) -> bool {
        self.drop_p > 0.0
            || self.dup_p > 0.0
            || self.flip_p > 0.0
            || self.delay_p > 0.0
            || self.stall_p > 0.0
    }

    /// The acknowledgement deadline for transmission attempt `attempt`
    /// (exponential backoff, capped to avoid overflow).
    pub fn timeout_for_attempt(&self, attempt: u32) -> Duration {
        self.ack_timeout * (1u32 << attempt.min(6))
    }

    /// Draw the faults for one transmission attempt of the message
    /// `(src → dest, seq)`. Pure in its arguments: the same plan draws
    /// the same faults for the same message on every run.
    ///
    /// `final_attempt` heals the network: the last transmission of a
    /// bounded retry sequence is never dropped, corrupted, or delayed,
    /// so retries always terminate.
    pub fn draw(
        &self,
        src: usize,
        dest: usize,
        seq: u64,
        attempt: u32,
        final_attempt: bool,
    ) -> FaultDraw {
        if final_attempt || !self.injects_faults() {
            return FaultDraw::default();
        }
        let u = |salt: u64| self.unit(src, dest, seq, attempt, salt);
        let mut draw = FaultDraw::default();
        if u(1) < self.drop_p {
            draw.drop = true;
        }
        if u(2) < self.dup_p {
            draw.duplicate = true;
        }
        if u(3) < self.flip_p {
            draw.flip_bit = Some(self.hash(src, dest, seq, attempt, 4));
        }
        if u(5) < self.delay_p && !self.delay.is_zero() {
            draw.delay = Some(self.delay);
        }
        // A stall models the rank being slow, not the message being
        // lost; one per logical message is enough.
        if attempt == 0 && u(6) < self.stall_p && !self.stall.is_zero() {
            draw.stall = Some(self.stall);
        }
        draw
    }

    fn hash(&self, src: usize, dest: usize, seq: u64, attempt: u32, salt: u64) -> u64 {
        let mut h = self.seed ^ 0x9E37_79B9_7F4A_7C15;
        for v in [src as u64, dest as u64, seq, attempt as u64, salt] {
            h = splitmix64(h ^ v);
        }
        h
    }

    fn unit(&self, src: usize, dest: usize, seq: u64, attempt: u32, salt: u64) -> f64 {
        (self.hash(src, dest, seq, attempt, salt) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// SplitMix64 finalizer: a full-avalanche 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a 64-bit over a byte slice: the per-message payload checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn parse_prob(key: &str, value: &str) -> Result<f64, FaultSpecError> {
    let p: f64 = value.trim().parse().map_err(|e| FaultSpecError(format!("{key}: {e}")))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(FaultSpecError(format!("{key}: probability {p} outside [0, 1]")));
    }
    Ok(p)
}

fn parse_prob_duration(key: &str, value: &str) -> Result<(f64, Duration), FaultSpecError> {
    let (p, d) = value
        .split_once(':')
        .ok_or_else(|| FaultSpecError(format!("{key} takes prob:duration, got `{value}`")))?;
    Ok((parse_prob(key, p)?, parse_duration(key, d)?))
}

fn parse_duration(key: &str, value: &str) -> Result<Duration, FaultSpecError> {
    let v = value.trim();
    let (digits, unit): (&str, fn(u64) -> Duration) = if let Some(d) = v.strip_suffix("ms") {
        (d, Duration::from_millis)
    } else if let Some(d) = v.strip_suffix("us") {
        (d, Duration::from_micros)
    } else if let Some(d) = v.strip_suffix("ns") {
        (d, Duration::from_nanos)
    } else if let Some(d) = v.strip_suffix('s') {
        (d, Duration::from_secs)
    } else {
        return Err(FaultSpecError(format!("{key}: duration `{v}` needs a ns/us/ms/s suffix")));
    };
    let n: u64 = digits.trim().parse().map_err(|e| FaultSpecError(format!("{key}: {e}")))?;
    Ok(unit(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_fault_free() {
        let p = FaultPlan::default();
        assert!(!p.injects_faults());
        for seq in 0..100 {
            assert!(!p.draw(0, 1, seq, 0, false).any());
        }
    }

    #[test]
    fn default_intensity_injects_something() {
        let p = FaultPlan::default_intensity(42);
        assert!(p.injects_faults());
        let fired = (0..1000).filter(|&s| p.draw(0, 1, s, 0, false).any()).count();
        // ~11% of messages should see at least one fault at 2/2/2/5%.
        assert!(fired > 40 && fired < 400, "{fired} of 1000 messages faulted");
    }

    #[test]
    fn draws_are_deterministic() {
        let a = FaultPlan::default_intensity(7);
        let b = FaultPlan::default_intensity(7);
        for seq in 0..200 {
            for attempt in 0..3 {
                assert_eq!(a.draw(2, 5, seq, attempt, false), b.draw(2, 5, seq, attempt, false));
            }
        }
    }

    #[test]
    fn different_seeds_draw_differently() {
        let a = FaultPlan::default_intensity(1);
        let b = FaultPlan::default_intensity(2);
        let differs = (0..500).any(|s| a.draw(0, 1, s, 0, false) != b.draw(0, 1, s, 0, false));
        assert!(differs, "seeds 1 and 2 drew identical fault sequences");
    }

    #[test]
    fn final_attempt_always_heals() {
        let p = FaultPlan { drop_p: 1.0, flip_p: 1.0, ..FaultPlan::default_intensity(3) };
        for seq in 0..100 {
            assert!(!p.draw(0, 1, seq, p.max_retries, true).any());
        }
    }

    #[test]
    fn spec_round_trip() {
        let p =
            FaultPlan::parse("drop=0.1,dup=0.05,flip=0.2,delay=0.3:2ms,stall=0.01:5us", 9).unwrap();
        assert_eq!(p.seed, 9);
        assert_eq!(p.drop_p, 0.1);
        assert_eq!(p.dup_p, 0.05);
        assert_eq!(p.flip_p, 0.2);
        assert_eq!(p.delay_p, 0.3);
        assert_eq!(p.delay, Duration::from_millis(2));
        assert_eq!(p.stall_p, 0.01);
        assert_eq!(p.stall, Duration::from_micros(5));
    }

    #[test]
    fn spec_recovery_knobs() {
        let p = FaultPlan::parse("timeout=100ms,retries=3", 0).unwrap();
        assert_eq!(p.ack_timeout, Duration::from_millis(100));
        assert_eq!(p.max_retries, 3);
        assert!(!p.injects_faults());
    }

    #[test]
    fn spec_rejects_garbage() {
        assert!(FaultPlan::parse("drop", 0).is_err());
        assert!(FaultPlan::parse("drop=2.0", 0).is_err());
        assert!(FaultPlan::parse("drop=-0.1", 0).is_err());
        assert!(FaultPlan::parse("warp=0.5", 0).is_err());
        assert!(FaultPlan::parse("delay=0.5", 0).is_err(), "delay needs prob:duration");
        assert!(FaultPlan::parse("delay=0.5:10", 0).is_err(), "duration needs a unit");
        assert!(FaultPlan::parse("timeout=0ms", 0).is_err());
    }

    #[test]
    fn empty_spec_is_fault_free() {
        let p = FaultPlan::parse("", 5).unwrap();
        assert!(!p.injects_faults());
        assert_eq!(p.seed, 5);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = FaultPlan::default();
        assert_eq!(p.timeout_for_attempt(0), DEFAULT_ACK_TIMEOUT);
        assert_eq!(p.timeout_for_attempt(1), DEFAULT_ACK_TIMEOUT * 2);
        assert_eq!(p.timeout_for_attempt(3), DEFAULT_ACK_TIMEOUT * 8);
        assert_eq!(p.timeout_for_attempt(40), DEFAULT_ACK_TIMEOUT * 64);
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn flip_bit_varies_with_message() {
        let p = FaultPlan { flip_p: 1.0, ..FaultPlan::default_intensity(11) };
        let bits: std::collections::HashSet<u64> =
            (0..50).filter_map(|s| p.draw(0, 1, s, 0, false).flip_bit).collect();
        assert!(bits.len() > 10, "flip positions should spread: {}", bits.len());
    }
}
