//! Non-blocking point-to-point operations.
//!
//! MPI codes overlap communication with computation via
//! `MPI_Isend`/`MPI_Irecv` + `MPI_Wait`. In this substrate sends are
//! already asynchronous (buffered channels), so `isend` completes
//! immediately; `irecv` returns a [`RecvRequest`] that the caller
//! completes with [`Comm::wait`] — matching arrives in the same
//! stash-aware order as blocking receives, so mixing blocking and
//! non-blocking traffic is safe.

use crate::comm::Comm;
use crate::datatype::Pod;

/// A pending receive.
///
/// Completed by [`Comm::wait`]; dropping an unwaited request is allowed
/// (the message, when it arrives, stays in the unexpected queue for a
/// later matching receive — MPI would call this a cancelled request).
#[derive(Debug)]
#[must_use = "a receive request does nothing until waited on"]
pub struct RecvRequest {
    pub(crate) src: usize,
    pub(crate) tag: u32,
}

impl Comm {
    /// Non-blocking send. The substrate's sends are buffered, so the
    /// operation completes immediately; provided for API parity with
    /// MPI codes being ported.
    pub fn isend<T: Pod>(&mut self, dest: usize, tag: u32, data: &[T]) {
        self.send(dest, tag, data);
    }

    /// Post a receive for `(src, tag)`; completion is deferred to
    /// [`Comm::wait`]. Use [`crate::comm::ANY_SOURCE`] to match any sender.
    pub fn irecv(&mut self, src: usize, tag: u32) -> RecvRequest {
        RecvRequest { src, tag }
    }

    /// Complete a pending receive, blocking until the message arrives.
    /// Returns `(actual_source, data)`.
    pub fn wait<T: Pod>(&mut self, req: RecvRequest) -> (usize, Vec<T>) {
        self.recv_any(req.src, req.tag)
    }

    /// Fallible [`Comm::wait`]: transport failures surface as
    /// [`crate::comm::CommError`] instead of panicking, for callers with
    /// a rollback path (the resilient distributed engine).
    pub fn try_wait<T: Pod>(
        &mut self,
        req: RecvRequest,
    ) -> Result<(usize, Vec<T>), crate::comm::CommError> {
        self.try_recv_any(req.src, req.tag)
    }

    /// Fallible [`Comm::waitall`]; same request-order contract.
    pub fn try_waitall<T: Pod>(
        &mut self,
        reqs: Vec<RecvRequest>,
    ) -> Result<Vec<(usize, Vec<T>)>, crate::comm::CommError> {
        reqs.into_iter().map(|r| self.try_wait(r)).collect()
    }

    /// Complete a batch of pending receives.
    ///
    /// **Ordering contract:** the result vector is in *request order* —
    /// `result[i]` completes `reqs[i]` — regardless of the order in which
    /// the matching messages actually arrived (late chunks are stashed by
    /// tag and matched when their request comes up). The distributed
    /// overlap engine relies on this to reassemble a chunked exchange by
    /// plain concatenation; do not reorder completions.
    pub fn waitall<T: Pod>(&mut self, reqs: Vec<RecvRequest>) -> Vec<(usize, Vec<T>)> {
        reqs.into_iter().map(|r| self.wait(r)).collect()
    }

    /// Split `data` into [`chunk_count`]`(data.len(), want)` nearly even
    /// chunks and send chunk `i` tagged `base_tag + i`. Pair with
    /// [`Comm::irecv_chunked`] on the receiver; concatenating the
    /// [`Comm::waitall`] payloads in request order reassembles `data`.
    pub fn isend_chunked<T: Pod>(&mut self, dest: usize, base_tag: u32, data: &[T], want: usize) {
        let k = chunk_count(data.len(), want);
        let mut offset = 0;
        for i in 0..k {
            let len = data.len() / k + usize::from(i < data.len() % k);
            self.isend(dest, base_tag + i as u32, &data[offset..offset + len]);
            offset += len;
        }
        debug_assert_eq!(offset, data.len());
    }

    /// Post the receives matching an [`Comm::isend_chunked`] of `len`
    /// elements in `want` requested chunks. Complete with
    /// [`Comm::waitall`] and concatenate in request order.
    pub fn irecv_chunked(
        &mut self,
        src: usize,
        base_tag: u32,
        len: usize,
        want: usize,
    ) -> Vec<RecvRequest> {
        (0..chunk_count(len, want)).map(|i| self.irecv(src, base_tag + i as u32)).collect()
    }
}

/// Number of chunks a chunked exchange of `len` elements uses when asked
/// for `want`: at least one message even for an empty buffer, and never
/// more messages than elements.
pub fn chunk_count(len: usize, want: usize) -> usize {
    want.max(1).min(len.max(1))
}

#[cfg(test)]
mod tests {
    use crate::comm::{World, ANY_SOURCE};

    #[test]
    fn isend_irecv_roundtrip() {
        World::run(2, |c| {
            if c.rank() == 0 {
                c.isend(1, 5, &[1.5f64, 2.5]);
            } else {
                let req = c.irecv(0, 5);
                let (src, data) = c.wait::<f64>(req);
                assert_eq!(src, 0);
                assert_eq!(data, vec![1.5, 2.5]);
            }
        });
    }

    #[test]
    fn overlap_computation_with_pending_receive() {
        // The classic pattern: post irecv, compute, then wait.
        let results = World::run(2, |c| {
            if c.rank() == 0 {
                c.isend(1, 1, &[42u64]);
                0
            } else {
                let req = c.irecv(0, 1);
                // "Computation" happens while the message is in flight.
                let local: u64 = (0..1000).sum();
                let (_, data) = c.wait::<u64>(req);
                local + data[0]
            }
        });
        assert_eq!(results[1], 499500 + 42);
    }

    #[test]
    fn waitall_preserves_request_order() {
        World::run(3, |c| {
            if c.rank() == 0 {
                let reqs = vec![c.irecv(1, 7), c.irecv(2, 7)];
                let got = c.waitall::<u64>(reqs);
                assert_eq!(got[0], (1, vec![10]));
                assert_eq!(got[1], (2, vec![20]));
            } else {
                let payload = [c.rank() as u64 * 10];
                c.isend(0, 7, &payload);
            }
        });
    }

    #[test]
    fn waitall_returns_request_order_even_for_reversed_arrival() {
        // The sender pushes the chunks backwards; the receiver's waitall
        // must still hand them back in request order (the contract the
        // overlap engine's chunk reassembly depends on).
        World::run(2, |c| {
            if c.rank() == 0 {
                for tag in (10u32..14).rev() {
                    c.isend(1, tag, &[tag as u64 * 100]);
                }
            } else {
                let reqs: Vec<_> = (10u32..14).map(|t| c.irecv(0, t)).collect();
                let got = c.waitall::<u64>(reqs);
                let vals: Vec<u64> = got.iter().map(|(_, d)| d[0]).collect();
                assert_eq!(vals, vec![1000, 1100, 1200, 1300]);
            }
        });
    }

    #[test]
    fn chunked_exchange_reassembles_by_concatenation() {
        use super::chunk_count;
        assert_eq!(chunk_count(100, 4), 4);
        assert_eq!(chunk_count(3, 8), 3);
        assert_eq!(chunk_count(0, 8), 1);
        assert_eq!(chunk_count(100, 0), 1);
        World::run(2, |c| {
            let data: Vec<u64> = (0..37).map(|i| i + 1000 * c.rank() as u64).collect();
            let peer = 1 - c.rank();
            c.isend_chunked(peer, 0x100, &data, 5);
            let reqs = c.irecv_chunked(peer, 0x100, data.len(), 5);
            let parts = c.waitall::<u64>(reqs);
            let joined: Vec<u64> = parts.into_iter().flat_map(|(_, d)| d).collect();
            let want: Vec<u64> = (0..37).map(|i| i + 1000 * peer as u64).collect();
            assert_eq!(joined, want);
        });
    }

    #[test]
    fn any_source_request() {
        World::run(4, |c| {
            if c.rank() == 0 {
                let mut seen = std::collections::HashSet::new();
                for _ in 0..3 {
                    let req = c.irecv(ANY_SOURCE, 2);
                    let (src, _) = c.wait::<u8>(req);
                    seen.insert(src);
                }
                assert_eq!(seen.len(), 3);
            } else {
                c.isend(0, 2, &[1u8]);
            }
        });
    }

    #[test]
    fn dropped_request_message_stays_matchable() {
        World::run(2, |c| {
            if c.rank() == 0 {
                c.isend(1, 9, &[7u32]);
            } else {
                {
                    let _dropped = c.irecv(0, 9);
                } // request cancelled without waiting
                  // A later blocking receive still gets the message.
                assert_eq!(c.recv::<u32>(0, 9), vec![7]);
            }
        });
    }

    #[test]
    fn mixing_blocking_and_nonblocking_traffic() {
        World::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 1, &[1u64]);
                c.isend(1, 2, &[2u64]);
                c.send(1, 3, &[3u64]);
            } else {
                // Receive out of order via requests + blocking calls.
                let r3 = c.irecv(0, 3);
                let two = c.recv::<u64>(0, 2);
                let (_, three) = c.wait::<u64>(r3);
                let one = c.recv::<u64>(0, 1);
                assert_eq!((one[0], two[0], three[0]), (1, 2, 3));
            }
        });
    }
}
