//! Non-blocking point-to-point operations.
//!
//! MPI codes overlap communication with computation via
//! `MPI_Isend`/`MPI_Irecv` + `MPI_Wait`. In this substrate sends are
//! already asynchronous (buffered channels), so `isend` completes
//! immediately; `irecv` returns a [`RecvRequest`] that the caller
//! completes with [`Comm::wait`] — matching arrives in the same
//! stash-aware order as blocking receives, so mixing blocking and
//! non-blocking traffic is safe.

use crate::comm::Comm;
use crate::datatype::Pod;

/// A pending receive.
///
/// Completed by [`Comm::wait`]; dropping an unwaited request is allowed
/// (the message, when it arrives, stays in the unexpected queue for a
/// later matching receive — MPI would call this a cancelled request).
#[derive(Debug)]
#[must_use = "a receive request does nothing until waited on"]
pub struct RecvRequest {
    pub(crate) src: usize,
    pub(crate) tag: u32,
}

impl Comm {
    /// Non-blocking send. The substrate's sends are buffered, so the
    /// operation completes immediately; provided for API parity with
    /// MPI codes being ported.
    pub fn isend<T: Pod>(&mut self, dest: usize, tag: u32, data: &[T]) {
        self.send(dest, tag, data);
    }

    /// Post a receive for `(src, tag)`; completion is deferred to
    /// [`Comm::wait`]. Use [`crate::comm::ANY_SOURCE`] to match any sender.
    pub fn irecv(&mut self, src: usize, tag: u32) -> RecvRequest {
        RecvRequest { src, tag }
    }

    /// Complete a pending receive, blocking until the message arrives.
    /// Returns `(actual_source, data)`.
    pub fn wait<T: Pod>(&mut self, req: RecvRequest) -> (usize, Vec<T>) {
        self.recv_any(req.src, req.tag)
    }

    /// Complete a batch of pending receives in order.
    pub fn waitall<T: Pod>(&mut self, reqs: Vec<RecvRequest>) -> Vec<(usize, Vec<T>)> {
        reqs.into_iter().map(|r| self.wait(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::comm::{World, ANY_SOURCE};

    #[test]
    fn isend_irecv_roundtrip() {
        World::run(2, |c| {
            if c.rank() == 0 {
                c.isend(1, 5, &[1.5f64, 2.5]);
            } else {
                let req = c.irecv(0, 5);
                let (src, data) = c.wait::<f64>(req);
                assert_eq!(src, 0);
                assert_eq!(data, vec![1.5, 2.5]);
            }
        });
    }

    #[test]
    fn overlap_computation_with_pending_receive() {
        // The classic pattern: post irecv, compute, then wait.
        let results = World::run(2, |c| {
            if c.rank() == 0 {
                c.isend(1, 1, &[42u64]);
                0
            } else {
                let req = c.irecv(0, 1);
                // "Computation" happens while the message is in flight.
                let local: u64 = (0..1000).sum();
                let (_, data) = c.wait::<u64>(req);
                local + data[0]
            }
        });
        assert_eq!(results[1], 499500 + 42);
    }

    #[test]
    fn waitall_preserves_request_order() {
        World::run(3, |c| {
            if c.rank() == 0 {
                let reqs = vec![c.irecv(1, 7), c.irecv(2, 7)];
                let got = c.waitall::<u64>(reqs);
                assert_eq!(got[0], (1, vec![10]));
                assert_eq!(got[1], (2, vec![20]));
            } else {
                let payload = [c.rank() as u64 * 10];
                c.isend(0, 7, &payload);
            }
        });
    }

    #[test]
    fn any_source_request() {
        World::run(4, |c| {
            if c.rank() == 0 {
                let mut seen = std::collections::HashSet::new();
                for _ in 0..3 {
                    let req = c.irecv(ANY_SOURCE, 2);
                    let (src, _) = c.wait::<u8>(req);
                    seen.insert(src);
                }
                assert_eq!(seen.len(), 3);
            } else {
                c.isend(0, 2, &[1u8]);
            }
        });
    }

    #[test]
    fn dropped_request_message_stays_matchable() {
        World::run(2, |c| {
            if c.rank() == 0 {
                c.isend(1, 9, &[7u32]);
            } else {
                {
                    let _dropped = c.irecv(0, 9);
                } // request cancelled without waiting
                  // A later blocking receive still gets the message.
                assert_eq!(c.recv::<u32>(0, 9), vec![7]);
            }
        });
    }

    #[test]
    fn mixing_blocking_and_nonblocking_traffic() {
        World::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 1, &[1u64]);
                c.isend(1, 2, &[2u64]);
                c.send(1, 3, &[3u64]);
            } else {
                // Receive out of order via requests + blocking calls.
                let r3 = c.irecv(0, 3);
                let two = c.recv::<u64>(0, 2);
                let (_, three) = c.wait::<u64>(r3);
                let one = c.recv::<u64>(0, 1);
                assert_eq!((one[0], two[0], three[0]), (1, 2, 3));
            }
        });
    }
}
