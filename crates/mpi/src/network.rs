//! Interconnect cost model (Tofu-D parameterization).
//!
//! The substrate moves bytes through memory, so measured wall time says
//! nothing about interconnect cost. Instead, each rank's recorded traffic
//! is priced with the standard α–β (latency–bandwidth) model:
//!
//! ```text
//! t(message) = α + bytes / β
//! ```
//!
//! parameterized to the Fugaku Tofu-D interconnect: ~0.5 µs put latency
//! and 6.8 GB/s per link, with `links_per_node` injection links usable in
//! parallel (Tofu-D has 6 RDMA engines; 4 usable concurrently by one
//! process is the practical figure in public measurements).

use serde::Serialize;

use crate::stats::CommStats;

/// α–β parameters of one node's injection path.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TofuParams {
    /// Per-message latency in seconds.
    pub latency_s: f64,
    /// Per-link bandwidth in bytes/s.
    pub link_bw: f64,
    /// Links a single rank can drive concurrently.
    pub links_per_node: u32,
}

impl TofuParams {
    /// Fugaku Tofu-D figures.
    pub fn tofu_d() -> TofuParams {
        TofuParams { latency_s: 0.5e-6, link_bw: 6.8e9, links_per_node: 4 }
    }

    /// Injection bandwidth a rank can reach with message parallelism.
    pub fn injection_bw(&self) -> f64 {
        self.link_bw * self.links_per_node as f64
    }
}

impl Default for TofuParams {
    fn default() -> Self {
        TofuParams::tofu_d()
    }
}

/// Prediction of interconnect time for one rank's recorded traffic.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CommTimePrediction {
    /// Seconds attributable to per-message latency.
    pub latency_seconds: f64,
    /// Seconds attributable to bandwidth.
    pub bandwidth_seconds: f64,
    /// Total predicted seconds.
    pub seconds: f64,
}

/// The network model: prices recorded traffic.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetworkModel {
    pub params: TofuParams,
}

impl NetworkModel {
    pub fn new(params: TofuParams) -> NetworkModel {
        NetworkModel { params }
    }

    /// Price one message of `bytes` bytes.
    pub fn message_time(&self, bytes: u64) -> f64 {
        self.params.latency_s + bytes as f64 / self.params.link_bw
    }

    /// Price a rank's whole recorded send traffic, assuming its messages
    /// overlap across `links_per_node` injection links (bandwidth term)
    /// while latency is paid per message on the critical path of a
    /// pipelined sequence (one α per message, overlapped across links).
    pub fn rank_time(&self, stats: &CommStats) -> CommTimePrediction {
        let links = self.params.links_per_node as f64;
        let latency_seconds = stats.messages_sent as f64 * self.params.latency_s / links;
        let bandwidth_seconds = stats.bytes_sent as f64 / self.params.injection_bw();
        CommTimePrediction {
            latency_seconds,
            bandwidth_seconds,
            seconds: latency_seconds + bandwidth_seconds,
        }
    }

    /// The predicted communication time of the whole world: the slowest
    /// rank (bulk-synchronous approximation).
    pub fn world_time(&self, per_rank: &[CommStats]) -> CommTimePrediction {
        per_rank
            .iter()
            .map(|s| self.rank_time(s))
            .max_by(|a, b| a.seconds.total_cmp(&b.seconds))
            .unwrap_or(CommTimePrediction {
                latency_seconds: 0.0,
                bandwidth_seconds: 0.0,
                seconds: 0.0,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(msgs: u64, bytes: u64) -> CommStats {
        CommStats {
            messages_sent: msgs,
            bytes_sent: bytes,
            messages_received: msgs,
            bytes_received: bytes,
            sends_by_dest: vec![],
            ..CommStats::default()
        }
    }

    #[test]
    fn small_message_is_latency_dominated() {
        let m = NetworkModel::default();
        let t = m.message_time(8);
        assert!(t > 0.99 * m.params.latency_s);
        assert!(t < 1.1 * m.params.latency_s);
    }

    #[test]
    fn large_message_is_bandwidth_dominated() {
        let m = NetworkModel::default();
        let bytes = 1u64 << 30;
        let t = m.message_time(bytes);
        let bw_only = bytes as f64 / m.params.link_bw;
        assert!((t - bw_only) / bw_only < 0.01);
    }

    #[test]
    fn rank_time_decomposition_adds_up() {
        let m = NetworkModel::default();
        let p = m.rank_time(&stats(100, 1 << 20));
        assert!((p.seconds - (p.latency_seconds + p.bandwidth_seconds)).abs() < 1e-15);
        assert!(p.latency_seconds > 0.0 && p.bandwidth_seconds > 0.0);
    }

    #[test]
    fn world_time_takes_slowest_rank() {
        let m = NetworkModel::default();
        let ranks = vec![stats(1, 10), stats(10, 1 << 26), stats(2, 100)];
        let world = m.world_time(&ranks);
        let heavy = m.rank_time(&ranks[1]);
        assert_eq!(world.seconds, heavy.seconds);
    }

    #[test]
    fn empty_world_is_zero() {
        let m = NetworkModel::default();
        assert_eq!(m.world_time(&[]).seconds, 0.0);
    }

    #[test]
    fn injection_bw_is_links_times_link() {
        let p = TofuParams::tofu_d();
        assert!((p.injection_bw() - 27.2e9).abs() < 1e3);
    }
}
