//! `mpi-sim`: an in-process message-passing substrate with an MPI-shaped
//! API.
//!
//! The distributed experiments of the reproduction need MPI semantics —
//! ranks, point-to-point messages with tag matching, and collectives —
//! but the paper's Fujitsu-MPI-on-Tofu-D stack is not available
//! (reproduction band: "MPI support weaker"). This crate runs each rank
//! as an OS thread inside one process:
//!
//! * [`World::run`] — spawn `n` ranks, each executing the same closure
//!   with its own [`Comm`]; per-rank return values are collected.
//! * [`Comm`] — `send`/`recv`/`sendrecv` with `(source, tag)` matching and
//!   out-of-order stashing, plus `barrier`, `bcast`, `gather`, `allgather`,
//!   `allreduce`, `alltoall`, `reduce`.
//! * [`Pod`] — the plain-old-data marker used to move typed slices
//!   through byte channels without serialization frameworks.
//! * [`network`] — an α–β (latency–bandwidth) cost model parameterized to
//!   Tofu-D, which converts the bytes/messages each rank actually moved
//!   (recorded by [`CommStats`]) into *predicted* interconnect time, so
//!   communication-fraction figures keep the shape they would have on the
//!   real machine.
//!
//! Semantics match MPI where it matters for correctness: message order
//! between a fixed (sender, receiver, tag) triple is preserved, `recv`
//! blocks, collectives synchronize all ranks of the world.

pub mod collectives;
pub mod comm;
pub mod datatype;
pub mod fault;
pub mod network;
pub mod nonblocking;
pub mod stats;

pub use comm::{Comm, CommError, World, ANY_SOURCE};
pub use datatype::Pod;
pub use fault::{FaultDraw, FaultPlan, FaultSpecError};
pub use network::{NetworkModel, TofuParams};
pub use nonblocking::{chunk_count, RecvRequest};
pub use stats::CommStats;

#[cfg(test)]
mod proptests;
