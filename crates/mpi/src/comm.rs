//! Ranks, the world, and point-to-point messaging.

use std::collections::VecDeque;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::datatype::{from_bytes, to_bytes, Pod};
use crate::stats::{CommStats, WorldStats};

/// Wildcard source for [`Comm::recv_any`] matching (MPI_ANY_SOURCE).
pub const ANY_SOURCE: usize = usize::MAX;

/// How long a receive waits before declaring the world wedged. Generous
/// enough for any legitimate in-process transfer; finite so a panicked
/// peer cannot hang `World::run`'s join forever.
const RECV_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(60);

/// One in-flight message.
#[derive(Debug)]
pub(crate) struct Envelope {
    pub src: usize,
    pub tag: u32,
    pub payload: Vec<u8>,
}

/// The world: a fixed set of ranks connected all-to-all.
pub struct World;

impl World {
    /// Run `f(comm)` on `n_ranks` rank threads and collect the per-rank
    /// return values in rank order.
    ///
    /// Panics in any rank propagate after all ranks have been joined, so a
    /// failing test reports the original panic message.
    pub fn run<T, F>(n_ranks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Sync,
    {
        assert!(n_ranks >= 1, "a world needs at least one rank");
        let mut txs = Vec::with_capacity(n_ranks);
        let mut rxs = Vec::with_capacity(n_ranks);
        for _ in 0..n_ranks {
            let (tx, rx) = unbounded::<Envelope>();
            txs.push(tx);
            rxs.push(Some(rx));
        }
        let world_stats = Arc::new(WorldStats::new(n_ranks));
        let f_ref = &f;
        let txs_ref = &txs;
        let stats_ref = &world_stats;

        let mut results: Vec<Option<T>> = (0..n_ranks).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n_ranks);
            for (rank, rx) in rxs.iter_mut().enumerate() {
                let rx = rx.take().expect("each rank consumes its receiver once");
                handles.push(scope.spawn(move || {
                    let mut comm = Comm {
                        rank,
                        size: n_ranks,
                        senders: txs_ref.clone(),
                        inbox: rx,
                        stash: VecDeque::new(),
                        stats: CommStats::default(),
                        world_stats: stats_ref.clone(),
                    };
                    let out = f_ref(&mut comm);
                    comm.world_stats.absorb(comm.rank, &comm.stats);
                    out
                }));
            }
            for (rank, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(v) => results[rank] = Some(v),
                    Err(p) => std::panic::resume_unwind(p),
                }
            }
        });
        results.into_iter().map(|r| r.expect("joined rank has a result")).collect()
    }

    /// Like [`World::run`], but also returns the aggregated communication
    /// statistics of the whole run.
    pub fn run_with_stats<T, F>(n_ranks: usize, f: F) -> (Vec<T>, Vec<CommStats>)
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Sync,
    {
        let stats_out = Arc::new(WorldStats::new(n_ranks));
        let stats_for_closure = stats_out.clone();
        let results = World::run(n_ranks, move |comm| {
            let out = f(comm);
            // Snapshot this rank's stats into the shared collector before
            // the rank finishes (World::run's own collector is private).
            stats_for_closure.absorb(comm.rank, &comm.stats);
            out
        });
        let per_rank = stats_out.snapshot();
        (results, per_rank)
    }
}

/// A rank's communicator: its identity plus channels to every peer.
pub struct Comm {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Envelope>>,
    inbox: Receiver<Envelope>,
    /// Received-but-unmatched messages (MPI's unexpected-message queue).
    stash: VecDeque<Envelope>,
    pub(crate) stats: CommStats,
    world_stats: Arc<WorldStats>,
}

impl Comm {
    /// This rank's index in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Communication statistics of this rank so far.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Send `data` to `dest` with `tag`. Buffered (never blocks): the
    /// substrate's channels are unbounded, like an eager-protocol MPI send
    /// below the rendezvous threshold.
    pub fn send<T: Pod>(&mut self, dest: usize, tag: u32, data: &[T]) {
        assert!(dest < self.size, "send to rank {dest} outside world of {}", self.size);
        let payload = to_bytes(data);
        self.stats.record_send(dest, payload.len());
        self.senders[dest]
            .send(Envelope { src: self.rank, tag, payload })
            .expect("receiving rank has exited with messages still in flight");
    }

    /// Blocking receive of a message from `src` (or [`ANY_SOURCE`]) with
    /// matching `tag`. Returns `(actual_source, data)`.
    pub fn recv_any<T: Pod>(&mut self, src: usize, tag: u32) -> (usize, Vec<T>) {
        // First scan the stash for an already-arrived match (FIFO per
        // (src, tag) pair preserves MPI ordering).
        if let Some(pos) =
            self.stash.iter().position(|e| (src == ANY_SOURCE || e.src == src) && e.tag == tag)
        {
            let env = self.stash.remove(pos).expect("position is valid");
            self.stats.record_recv(env.src, env.payload.len());
            return (env.src, from_bytes(&env.payload));
        }
        loop {
            // A bounded wait instead of a blocking recv: if a peer rank
            // panicked (or the program deadlocked), an unbounded recv
            // would hang the whole world forever, because thread::scope
            // cannot join the blocked rank. Timing out converts that
            // into a diagnosable panic on this rank.
            let env = match self.inbox.recv_timeout(RECV_TIMEOUT) {
                Ok(env) => env,
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => panic!(
                    "rank {} waited {RECV_TIMEOUT:?} for a message from rank {src} (tag {tag}): \
                     deadlock, or a peer rank exited/panicked",
                    self.rank
                ),
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    panic!("world torn down while rank {} still waiting in recv", self.rank)
                }
            };
            if (src == ANY_SOURCE || env.src == src) && env.tag == tag {
                self.stats.record_recv(env.src, env.payload.len());
                return (env.src, from_bytes(&env.payload));
            }
            self.stash.push_back(env);
        }
    }

    /// Blocking receive from a specific source.
    pub fn recv<T: Pod>(&mut self, src: usize, tag: u32) -> Vec<T> {
        self.recv_any(src, tag).1
    }

    /// Combined send+receive with the same peer (MPI_Sendrecv) — the
    /// primitive of the distributed state-vector pair exchange. Deadlock
    /// free because sends are buffered.
    pub fn sendrecv<T: Pod>(&mut self, peer: usize, tag: u32, data: &[T]) -> Vec<T> {
        self.send(peer, tag, data);
        self.recv(peer, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_runs_every_rank() {
        let ranks = World::run(8, |c| c.rank());
        assert_eq!(ranks, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn size_visible_to_ranks() {
        let sizes = World::run(5, |c| c.size());
        assert!(sizes.iter().all(|&s| s == 5));
    }

    #[test]
    fn ring_pass() {
        // Each rank sends its rank to the next; sum arrives back at 0.
        let results = World::run(6, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send(next, 7, &[c.rank() as u64]);
            let got = c.recv::<u64>(prev, 7);
            got[0]
        });
        let mut sorted = results.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).map(|r| r as u64).collect::<Vec<_>>());
    }

    #[test]
    fn tag_matching_reorders() {
        // Rank 0 sends tag 1 then tag 2; rank 1 receives tag 2 first.
        World::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 1, &[11u32]);
                c.send(1, 2, &[22u32]);
            } else {
                let two = c.recv::<u32>(0, 2);
                let one = c.recv::<u32>(0, 1);
                assert_eq!(two, vec![22]);
                assert_eq!(one, vec![11]);
            }
        });
    }

    #[test]
    fn fifo_order_within_tag() {
        World::run(2, |c| {
            if c.rank() == 0 {
                for i in 0..100u32 {
                    c.send(1, 0, &[i]);
                }
            } else {
                for i in 0..100u32 {
                    assert_eq!(c.recv::<u32>(0, 0), vec![i]);
                }
            }
        });
    }

    #[test]
    fn any_source_receives_from_all() {
        World::run(4, |c| {
            if c.rank() == 0 {
                let mut seen = std::collections::HashSet::new();
                for _ in 0..3 {
                    let (src, data) = c.recv_any::<u64>(ANY_SOURCE, 9);
                    assert_eq!(data[0] as usize, src);
                    seen.insert(src);
                }
                assert_eq!(seen.len(), 3);
            } else {
                c.send(0, 9, &[c.rank() as u64]);
            }
        });
    }

    #[test]
    fn sendrecv_pairwise_exchange() {
        let results = World::run(4, |c| {
            let peer = c.rank() ^ 1;
            let got = c.sendrecv(peer, 3, &[c.rank() as u64 * 10]);
            got[0]
        });
        assert_eq!(results, vec![10, 0, 30, 20]);
    }

    #[test]
    fn stats_count_bytes_and_messages() {
        let (_, stats) = World::run_with_stats(2, |c| {
            if c.rank() == 0 {
                c.send(1, 0, &[0u8; 1000]);
            } else {
                let _ = c.recv::<u8>(0, 0);
            }
        });
        assert_eq!(stats[0].bytes_sent, 1000);
        assert_eq!(stats[0].messages_sent, 1);
        assert_eq!(stats[1].bytes_received, 1000);
    }

    #[test]
    fn single_rank_world() {
        let r = World::run(1, |c| {
            assert_eq!(c.size(), 1);
            42
        });
        assert_eq!(r, vec![42]);
    }

    #[test]
    fn self_send() {
        World::run(1, |c| {
            c.send(0, 5, &[1.25f64, 2.5]);
            assert_eq!(c.recv::<f64>(0, 5), vec![1.25, 2.5]);
        });
    }
}
