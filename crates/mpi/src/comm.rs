//! Ranks, the world, and point-to-point messaging.
//!
//! Two transport modes share one API:
//!
//! * **Fast path** (no [`FaultPlan`]): sends are buffered channel pushes
//!   and receives are tag-matched channel pops — zero per-message
//!   overhead beyond the channel itself.
//! * **Reliable path** (a plan attached via [`World::run_faulted`] or
//!   the `QCS_FAULT_SEED`/`QCS_FAULT_SPEC` environment): every data
//!   message carries a sequence number and an FNV-1a payload checksum,
//!   and the sender runs stop-and-wait ARQ — transmit, await an
//!   acknowledgement (pumping its own inbox meanwhile so peers are never
//!   starved), and retransmit with exponential backoff when the ACK
//!   deadline passes. Receivers discard corrupt envelopes (no ACK ⇒ the
//!   sender retries) and duplicate envelopes (re-ACK ⇒ a sender stuck on
//!   that sequence advances), so injected drops, delays, duplications,
//!   and bit-flips are all survived and the delivered byte stream is
//!   identical to a fault-free run.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use crate::datatype::{from_bytes, to_bytes, Pod};
use crate::fault::{fnv1a, FaultPlan};
use crate::stats::{CommStats, WorldStats};

/// Wildcard source for [`Comm::recv_any`] matching (MPI_ANY_SOURCE).
pub const ANY_SOURCE: usize = usize::MAX;

/// How long a receive waits before declaring the world wedged. Generous
/// enough for any legitimate in-process transfer; finite so a panicked
/// peer cannot hang `World::run`'s join forever.
pub const RECV_TIMEOUT: Duration = Duration::from_secs(60);

/// Transport failures surfaced by the `try_*` operations (the panicking
/// wrappers render these as messages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The reliable transport exhausted its retry budget without an
    /// acknowledgement — the peer is gone or never posted a receive.
    RetriesExhausted { dest: usize, tag: u32, attempts: u32 },
    /// A receive waited [`RECV_TIMEOUT`] without a matching message.
    Timeout { src: usize, tag: u32 },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::RetriesExhausted { dest, tag, attempts } => write!(
                f,
                "no acknowledgement from rank {dest} (tag {tag:#x}) after {attempts} attempts"
            ),
            CommError::Timeout { src, tag } => {
                write!(f, "timed out waiting for a message from rank {src} (tag {tag:#x})")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Whether an envelope carries application data or an acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kind {
    Data,
    Ack,
}

/// One in-flight message.
#[derive(Debug, Clone)]
pub(crate) struct Envelope {
    pub src: usize,
    pub tag: u32,
    pub payload: Vec<u8>,
    /// Per-(src, dest) sequence number (reliable path; 0 on fast path).
    pub seq: u64,
    pub kind: Kind,
    /// FNV-1a 64 of `payload` (reliable path; 0 on fast path).
    pub checksum: u64,
    /// Injected delivery delay: the receiver parks the envelope until
    /// this instant (fault injection only).
    pub deliver_after: Option<Instant>,
}

/// What one pump step produced.
enum Pumped {
    /// A verified data envelope was moved to the stash.
    Delivered,
    /// An acknowledgement for `(src, seq)` arrived.
    Ack { src: usize, seq: u64 },
}

/// The world: a fixed set of ranks connected all-to-all.
pub struct World;

impl World {
    /// Run `f(comm)` on `n_ranks` rank threads and collect the per-rank
    /// return values in rank order. A [`FaultPlan`] is resolved from the
    /// environment (`QCS_FAULT_SEED` / `QCS_FAULT_SPEC`); without one
    /// the zero-overhead fast path runs.
    ///
    /// Panics in any rank propagate after all ranks have been joined, so a
    /// failing test reports the original panic message.
    pub fn run<T, F>(n_ranks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Sync,
    {
        World::run_faulted(n_ranks, FaultPlan::from_env(), f)
    }

    /// Like [`World::run`] with an explicit fault plan (`None` forces
    /// the fast path regardless of the environment).
    pub fn run_faulted<T, F>(n_ranks: usize, plan: Option<FaultPlan>, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Sync,
    {
        assert!(n_ranks >= 1, "a world needs at least one rank");
        let mut txs = Vec::with_capacity(n_ranks);
        let mut rxs = Vec::with_capacity(n_ranks);
        for _ in 0..n_ranks {
            let (tx, rx) = unbounded::<Envelope>();
            txs.push(tx);
            rxs.push(Some(rx));
        }
        let world_stats = Arc::new(WorldStats::new(n_ranks));
        let plan = plan.map(Arc::new);
        let f_ref = &f;
        let txs_ref = &txs;
        let stats_ref = &world_stats;
        let plan_ref = &plan;

        let mut results: Vec<Option<T>> = (0..n_ranks).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n_ranks);
            for (rank, rx) in rxs.iter_mut().enumerate() {
                let rx = rx.take().expect("each rank consumes its receiver once");
                handles.push(scope.spawn(move || {
                    let mut comm = Comm {
                        rank,
                        size: n_ranks,
                        senders: txs_ref.clone(),
                        inbox: rx,
                        stash: VecDeque::new(),
                        stats: CommStats::default(),
                        world_stats: stats_ref.clone(),
                        plan: plan_ref.clone(),
                        next_seq: vec![0; n_ranks],
                        expected_seq: vec![0; n_ranks],
                        delayed: Vec::new(),
                    };
                    let out = f_ref(&mut comm);
                    comm.world_stats.absorb(comm.rank, &comm.stats);
                    out
                }));
            }
            for (rank, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(v) => results[rank] = Some(v),
                    Err(p) => std::panic::resume_unwind(p),
                }
            }
        });
        results.into_iter().map(|r| r.expect("joined rank has a result")).collect()
    }

    /// Like [`World::run`], but also returns the aggregated communication
    /// statistics of the whole run.
    pub fn run_with_stats<T, F>(n_ranks: usize, f: F) -> (Vec<T>, Vec<CommStats>)
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Sync,
    {
        World::run_faulted_with_stats(n_ranks, FaultPlan::from_env(), f)
    }

    /// [`World::run_faulted`] + per-rank statistics.
    pub fn run_faulted_with_stats<T, F>(
        n_ranks: usize,
        plan: Option<FaultPlan>,
        f: F,
    ) -> (Vec<T>, Vec<CommStats>)
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Sync,
    {
        let stats_out = Arc::new(WorldStats::new(n_ranks));
        let stats_for_closure = stats_out.clone();
        let results = World::run_faulted(n_ranks, plan, move |comm| {
            let out = f(comm);
            // Snapshot this rank's stats into the shared collector before
            // the rank finishes (World::run's own collector is private).
            stats_for_closure.absorb(comm.rank, &comm.stats);
            out
        });
        let per_rank = stats_out.snapshot();
        (results, per_rank)
    }
}

/// A rank's communicator: its identity plus channels to every peer.
pub struct Comm {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Envelope>>,
    inbox: Receiver<Envelope>,
    /// Received-but-unmatched messages (MPI's unexpected-message queue).
    stash: VecDeque<Envelope>,
    pub(crate) stats: CommStats,
    world_stats: Arc<WorldStats>,
    /// Reliable-transport mode: checksums, ACKs, retries, fault draws.
    plan: Option<Arc<FaultPlan>>,
    /// Reliable path: next sequence number per destination.
    next_seq: Vec<u64>,
    /// Reliable path: next expected sequence number per source.
    expected_seq: Vec<u64>,
    /// Envelopes with an injected delay, parked until they mature.
    delayed: Vec<Envelope>,
}

impl Comm {
    /// This rank's index in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Communication statistics of this rank so far.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// The fault plan this world runs under, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.plan.as_deref()
    }

    /// Send `data` to `dest` with `tag`. On the fast path this is
    /// buffered and never blocks (an eager-protocol MPI send below the
    /// rendezvous threshold); under a fault plan it blocks until the
    /// receiver acknowledges the (possibly retransmitted) message.
    /// Panics when the transport gives up; see [`Comm::try_send`].
    pub fn send<T: Pod>(&mut self, dest: usize, tag: u32, data: &[T]) {
        self.try_send(dest, tag, data).unwrap_or_else(|e| {
            panic!("rank {} send failed: {e}", self.rank);
        });
    }

    /// Fallible send: returns [`CommError::RetriesExhausted`] instead of
    /// panicking when the reliable transport runs out of attempts.
    pub fn try_send<T: Pod>(&mut self, dest: usize, tag: u32, data: &[T]) -> Result<(), CommError> {
        assert!(dest < self.size, "send to rank {dest} outside world of {}", self.size);
        let payload = to_bytes(data);
        self.stats.record_send(dest, payload.len());
        if self.plan.is_some() {
            return self.send_reliable(dest, tag, payload);
        }
        self.senders[dest]
            .send(Envelope {
                src: self.rank,
                tag,
                payload,
                seq: 0,
                kind: Kind::Data,
                checksum: 0,
                deliver_after: None,
            })
            .expect("receiving rank has exited with messages still in flight");
        Ok(())
    }

    /// Stop-and-wait ARQ: transmit with injected faults, await the ACK
    /// (pumping the inbox so peers progress), retransmit on timeout.
    fn send_reliable(&mut self, dest: usize, tag: u32, payload: Vec<u8>) -> Result<(), CommError> {
        let plan = self.plan.clone().expect("reliable path requires a plan");
        let seq = self.next_seq[dest];
        self.next_seq[dest] = seq + 1;
        let checksum = fnv1a(&payload);
        let attempts = plan.max_retries + 1;
        for attempt in 0..attempts {
            let final_attempt = attempt + 1 == attempts;
            let draw = plan.draw(self.rank, dest, seq, attempt, final_attempt);
            if let Some(stall) = draw.stall {
                self.stats.faults_injected += 1;
                std::thread::sleep(stall);
            }
            if draw.drop {
                self.stats.faults_injected += 1;
            } else {
                let mut delivered = payload.clone();
                if let Some(bit) = draw.flip_bit {
                    if !delivered.is_empty() {
                        let b = (bit % (delivered.len() as u64 * 8)) as usize;
                        delivered[b / 8] ^= 1 << (b % 8);
                        self.stats.faults_injected += 1;
                    }
                }
                let deliver_after = draw.delay.map(|d| {
                    self.stats.faults_injected += 1;
                    Instant::now() + d
                });
                let env = Envelope {
                    src: self.rank,
                    tag,
                    payload: delivered,
                    seq,
                    kind: Kind::Data,
                    checksum,
                    deliver_after,
                };
                let dup = draw.duplicate.then(|| env.clone());
                // Best-effort pushes: reliability comes from the ACK, so
                // a peer that already exited just means no ACK arrives.
                let _ = self.senders[dest].send(env);
                if let Some(d) = dup {
                    self.stats.faults_injected += 1;
                    let _ = self.senders[dest].send(d);
                }
            }
            if self.await_ack(dest, seq, plan.timeout_for_attempt(attempt)) {
                return Ok(());
            }
            self.stats.ack_timeouts += 1;
            if !final_attempt {
                self.stats.retries += 1;
            }
        }
        Err(CommError::RetriesExhausted { dest, tag, attempts })
    }

    /// Pump the inbox until the ACK for `(dest, seq)` arrives or the
    /// deadline passes. Data delivered meanwhile lands in the stash;
    /// stale ACKs (earlier sequences, already satisfied) are dropped.
    fn await_ack(&mut self, dest: usize, seq: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            match self.pump_until(deadline) {
                Some(Pumped::Ack { src, seq: s }) if src == dest && s == seq => return true,
                Some(_) => continue,
                None => return false,
            }
        }
    }

    /// Take one step of envelope intake: deliver a matured delayed
    /// envelope or block on the inbox until `deadline`. Returns `None`
    /// at the deadline with nothing admitted.
    fn pump_until(&mut self, deadline: Instant) -> Option<Pumped> {
        loop {
            let now = Instant::now();
            if let Some(pos) =
                self.delayed.iter().position(|e| e.deliver_after.is_none_or(|t| t <= now))
            {
                let env = self.delayed.swap_remove(pos);
                if let Some(p) = self.admit(env) {
                    return Some(p);
                }
                continue;
            }
            if now >= deadline {
                return None;
            }
            // Wake early if a parked envelope matures before the deadline.
            let wake = self
                .delayed
                .iter()
                .filter_map(|e| e.deliver_after)
                .min()
                .map_or(deadline, |t| t.min(deadline));
            match self.inbox.recv_timeout(wake.saturating_duration_since(now)) {
                Ok(env) => {
                    if env.deliver_after.is_some_and(|t| t > Instant::now()) {
                        self.delayed.push(env);
                        continue;
                    }
                    if let Some(p) = self.admit(env) {
                        return Some(p);
                    }
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => {
                    panic!("world torn down while rank {} still waiting in recv", self.rank)
                }
            }
        }
    }

    /// Verify, deduplicate, acknowledge, and stash one incoming
    /// envelope. `None` when the envelope was discarded.
    fn admit(&mut self, env: Envelope) -> Option<Pumped> {
        match env.kind {
            Kind::Ack => Some(Pumped::Ack { src: env.src, seq: env.seq }),
            Kind::Data => {
                if fnv1a(&env.payload) != env.checksum {
                    // Corrupt in flight: drop without ACK so the sender's
                    // deadline passes and it retransmits.
                    self.stats.corrupt_dropped += 1;
                    return None;
                }
                let src = env.src;
                if env.seq < self.expected_seq[src] {
                    // Duplicate (injected, or a retransmission racing its
                    // own ACK): re-acknowledge so a sender still waiting
                    // on this sequence advances, then discard.
                    self.stats.duplicates_dropped += 1;
                    self.send_ack(src, env.tag, env.seq);
                    return None;
                }
                debug_assert_eq!(
                    env.seq, self.expected_seq[src],
                    "stop-and-wait sender cannot run ahead of the receiver"
                );
                self.expected_seq[src] = env.seq + 1;
                self.send_ack(src, env.tag, env.seq);
                self.stash.push_back(env);
                Some(Pumped::Delivered)
            }
        }
    }

    /// Acknowledgements ride the same channels but are never faulted —
    /// they model the (tiny, hardware-checksummed) protocol traffic, not
    /// application payloads.
    fn send_ack(&mut self, to: usize, tag: u32, seq: u64) {
        let _ = self.senders[to].send(Envelope {
            src: self.rank,
            tag,
            payload: Vec::new(),
            seq,
            kind: Kind::Ack,
            checksum: 0,
            deliver_after: None,
        });
    }

    /// Pop the first stashed envelope matching `(src, tag)`.
    fn take_stashed(&mut self, src: usize, tag: u32) -> Option<Envelope> {
        let pos =
            self.stash.iter().position(|e| (src == ANY_SOURCE || e.src == src) && e.tag == tag)?;
        Some(self.stash.remove(pos).expect("position is valid"))
    }

    /// Blocking receive of a message from `src` (or [`ANY_SOURCE`]) with
    /// matching `tag`. Returns `(actual_source, data)`. Panics when the
    /// world is wedged; see [`Comm::try_recv_any`].
    pub fn recv_any<T: Pod>(&mut self, src: usize, tag: u32) -> (usize, Vec<T>) {
        self.try_recv_any(src, tag).unwrap_or_else(|e| {
            panic!(
                "rank {} waited {RECV_TIMEOUT:?} for a message from rank {src} (tag {tag}): \
                 deadlock, or a peer rank exited/panicked ({e})",
                self.rank
            )
        })
    }

    /// Fallible blocking receive: [`CommError::Timeout`] after
    /// [`RECV_TIMEOUT`] instead of a panic.
    pub fn try_recv_any<T: Pod>(
        &mut self,
        src: usize,
        tag: u32,
    ) -> Result<(usize, Vec<T>), CommError> {
        // First scan the stash for an already-arrived match (FIFO per
        // (src, tag) pair preserves MPI ordering).
        if let Some(env) = self.take_stashed(src, tag) {
            self.stats.record_recv(env.src, env.payload.len());
            return Ok((env.src, from_bytes(&env.payload)));
        }
        if self.plan.is_some() {
            // Reliable path: all intake funnels through the pump (which
            // verifies, deduplicates, and ACKs), then the stash is
            // re-scanned after every delivery.
            let deadline = Instant::now() + RECV_TIMEOUT;
            loop {
                match self.pump_until(deadline) {
                    Some(Pumped::Delivered) => {
                        if let Some(env) = self.take_stashed(src, tag) {
                            self.stats.record_recv(env.src, env.payload.len());
                            return Ok((env.src, from_bytes(&env.payload)));
                        }
                    }
                    // A stale ACK from an already-completed send.
                    Some(Pumped::Ack { .. }) => continue,
                    None => return Err(CommError::Timeout { src, tag }),
                }
            }
        }
        loop {
            // A bounded wait instead of a blocking recv: if a peer rank
            // panicked (or the program deadlocked), an unbounded recv
            // would hang the whole world forever, because thread::scope
            // cannot join the blocked rank. Timing out converts that
            // into a diagnosable error on this rank.
            let env = match self.inbox.recv_timeout(RECV_TIMEOUT) {
                Ok(env) => env,
                Err(RecvTimeoutError::Timeout) => return Err(CommError::Timeout { src, tag }),
                Err(RecvTimeoutError::Disconnected) => {
                    panic!("world torn down while rank {} still waiting in recv", self.rank)
                }
            };
            if (src == ANY_SOURCE || env.src == src) && env.tag == tag {
                self.stats.record_recv(env.src, env.payload.len());
                return Ok((env.src, from_bytes(&env.payload)));
            }
            self.stash.push_back(env);
        }
    }

    /// Blocking receive from a specific source.
    pub fn recv<T: Pod>(&mut self, src: usize, tag: u32) -> Vec<T> {
        self.recv_any(src, tag).1
    }

    /// Combined send+receive with the same peer (MPI_Sendrecv) — the
    /// primitive of the distributed state-vector pair exchange. Deadlock
    /// free because sends are buffered (fast path) or pump the inbox
    /// while awaiting acknowledgement (reliable path).
    pub fn sendrecv<T: Pod>(&mut self, peer: usize, tag: u32, data: &[T]) -> Vec<T> {
        self.send(peer, tag, data);
        self.recv(peer, tag)
    }

    /// Fallible [`Comm::sendrecv`]: transport failures come back as
    /// [`CommError`] so callers (the distributed engine) can attempt
    /// recovery instead of tearing the world down.
    pub fn try_sendrecv<T: Pod>(
        &mut self,
        peer: usize,
        tag: u32,
        data: &[T],
    ) -> Result<Vec<T>, CommError> {
        self.try_send(peer, tag, data)?;
        Ok(self.try_recv_any(peer, tag)?.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_runs_every_rank() {
        let ranks = World::run(8, |c| c.rank());
        assert_eq!(ranks, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn size_visible_to_ranks() {
        let sizes = World::run(5, |c| c.size());
        assert!(sizes.iter().all(|&s| s == 5));
    }

    #[test]
    fn ring_pass() {
        // Each rank sends its rank to the next; sum arrives back at 0.
        let results = World::run(6, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send(next, 7, &[c.rank() as u64]);
            let got = c.recv::<u64>(prev, 7);
            got[0]
        });
        let mut sorted = results.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).map(|r| r as u64).collect::<Vec<_>>());
    }

    #[test]
    fn tag_matching_reorders() {
        // Rank 0 sends tag 1 then tag 2; rank 1 receives tag 2 first.
        World::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 1, &[11u32]);
                c.send(1, 2, &[22u32]);
            } else {
                let two = c.recv::<u32>(0, 2);
                let one = c.recv::<u32>(0, 1);
                assert_eq!(two, vec![22]);
                assert_eq!(one, vec![11]);
            }
        });
    }

    #[test]
    fn fifo_order_within_tag() {
        World::run(2, |c| {
            if c.rank() == 0 {
                for i in 0..100u32 {
                    c.send(1, 0, &[i]);
                }
            } else {
                for i in 0..100u32 {
                    assert_eq!(c.recv::<u32>(0, 0), vec![i]);
                }
            }
        });
    }

    #[test]
    fn any_source_receives_from_all() {
        World::run(4, |c| {
            if c.rank() == 0 {
                let mut seen = std::collections::HashSet::new();
                for _ in 0..3 {
                    let (src, data) = c.recv_any::<u64>(ANY_SOURCE, 9);
                    assert_eq!(data[0] as usize, src);
                    seen.insert(src);
                }
                assert_eq!(seen.len(), 3);
            } else {
                c.send(0, 9, &[c.rank() as u64]);
            }
        });
    }

    #[test]
    fn sendrecv_pairwise_exchange() {
        let results = World::run(4, |c| {
            let peer = c.rank() ^ 1;
            let got = c.sendrecv(peer, 3, &[c.rank() as u64 * 10]);
            got[0]
        });
        assert_eq!(results, vec![10, 0, 30, 20]);
    }

    #[test]
    fn stats_count_bytes_and_messages() {
        let (_, stats) = World::run_with_stats(2, |c| {
            if c.rank() == 0 {
                c.send(1, 0, &[0u8; 1000]);
            } else {
                let _ = c.recv::<u8>(0, 0);
            }
        });
        assert_eq!(stats[0].bytes_sent, 1000);
        assert_eq!(stats[0].messages_sent, 1);
        assert_eq!(stats[1].bytes_received, 1000);
    }

    #[test]
    fn single_rank_world() {
        let r = World::run(1, |c| {
            assert_eq!(c.size(), 1);
            42
        });
        assert_eq!(r, vec![42]);
    }

    #[test]
    fn self_send() {
        World::run(1, |c| {
            c.send(0, 5, &[1.25f64, 2.5]);
            assert_eq!(c.recv::<f64>(0, 5), vec![1.25, 2.5]);
        });
    }

    /// An aggressive plan with every fault class active but short
    /// delays, so faulted tests stay fast.
    fn aggressive_plan(seed: u64) -> FaultPlan {
        FaultPlan {
            drop_p: 0.25,
            dup_p: 0.25,
            flip_p: 0.25,
            delay_p: 0.25,
            delay: Duration::from_micros(300),
            stall_p: 0.05,
            stall: Duration::from_micros(200),
            ack_timeout: Duration::from_millis(5),
            ..FaultPlan::default_intensity(seed)
        }
    }

    #[test]
    fn faulted_transfer_delivers_exact_payload() {
        let payload: Vec<u64> = (0..512).map(|i| i * 0x9E37_79B9).collect();
        let expect = payload.clone();
        let results = World::run_faulted(2, Some(aggressive_plan(42)), move |c| {
            if c.rank() == 0 {
                for chunk in payload.chunks(64) {
                    c.send(1, 4, chunk);
                }
                Vec::new()
            } else {
                let mut got = Vec::new();
                for _ in 0..8 {
                    got.extend(c.recv::<u64>(0, 4));
                }
                got
            }
        });
        assert_eq!(results[1], expect, "ARQ must deliver the exact byte stream");
    }

    #[test]
    fn faulted_ring_matches_fault_free() {
        let run = |plan: Option<FaultPlan>| {
            World::run_faulted(4, plan, |c| {
                let next = (c.rank() + 1) % c.size();
                let prev = (c.rank() + c.size() - 1) % c.size();
                let mut token = vec![c.rank() as u64];
                for _ in 0..5 {
                    c.send(next, 1, &token);
                    token = c.recv::<u64>(prev, 1);
                    token[0] += 1;
                }
                token[0]
            })
        };
        assert_eq!(run(Some(aggressive_plan(7))), run(None));
    }

    #[test]
    fn faulted_run_records_recovery_work() {
        // With 25% drops and bit-flips over many messages, the transport
        // must have retried at least once — and the logical counters must
        // still match the fault-free run exactly.
        let exercise = |plan: Option<FaultPlan>| {
            World::run_faulted_with_stats(2, plan, |c| {
                if c.rank() == 0 {
                    for i in 0..40u32 {
                        c.send(1, 2, &[i; 16]);
                    }
                } else {
                    for _ in 0..40 {
                        let _ = c.recv::<u32>(0, 2);
                    }
                }
            })
        };
        let (_, faulted) = exercise(Some(aggressive_plan(11)));
        let (_, clean) = exercise(None);
        assert!(faulted[0].retries > 0, "a 25% drop rate must force retries");
        assert!(faulted[0].faults_injected > 0);
        assert_eq!(faulted[0].bytes_sent, clean[0].bytes_sent, "logical bytes are fault-invariant");
        assert_eq!(faulted[0].messages_sent, clean[0].messages_sent);
        assert_eq!(faulted[1].bytes_received, clean[1].bytes_received);
        assert_eq!(faulted[1].messages_received, clean[1].messages_received);
    }

    #[test]
    fn duplicates_are_discarded_once() {
        let plan = FaultPlan {
            dup_p: 1.0,
            ack_timeout: Duration::from_millis(10),
            ..FaultPlan::default()
        };
        let (results, stats) = World::run_faulted_with_stats(2, Some(plan), |c| {
            if c.rank() == 0 {
                for i in 0..10u32 {
                    c.send(1, 3, &[i]);
                }
                Vec::new()
            } else {
                (0..10).map(|_| c.recv::<u32>(0, 3)[0]).collect::<Vec<_>>()
            }
        });
        assert_eq!(results[1], (0..10).collect::<Vec<u32>>());
        // The duplicate of the final message may still sit unread in the
        // inbox when the receiver finishes, so 9 is the guaranteed floor.
        assert!(stats[1].duplicates_dropped >= 9, "every message was duplicated");
    }

    #[test]
    fn corruption_is_detected_and_retransmitted() {
        let plan = FaultPlan {
            flip_p: 1.0,
            ack_timeout: Duration::from_millis(5),
            max_retries: 2,
            ..FaultPlan::default()
        };
        let (results, stats) = World::run_faulted_with_stats(2, Some(plan), |c| {
            if c.rank() == 0 {
                c.send(1, 6, &[0xDEAD_BEEFu64; 32]);
                0
            } else {
                c.recv::<u64>(0, 6)[0]
            }
        });
        // Every non-final attempt is corrupted; the healed final attempt
        // delivers the exact payload.
        assert_eq!(results[1], 0xDEAD_BEEF);
        assert!(stats[1].corrupt_dropped >= 1);
        assert!(stats[0].retries >= 1);
    }

    #[test]
    fn faulted_self_send() {
        World::run_faulted(1, Some(aggressive_plan(3)), |c| {
            c.send(0, 5, &[9.75f64]);
            assert_eq!(c.recv::<f64>(0, 5), vec![9.75]);
        });
    }

    #[test]
    fn unreceived_send_exhausts_retries() {
        let plan = FaultPlan {
            ack_timeout: Duration::from_millis(2),
            max_retries: 2,
            ..FaultPlan::default()
        };
        let errs = World::run_faulted(2, Some(plan), |c| {
            if c.rank() == 0 {
                // Rank 1 never posts a receive: the ACK never comes.
                c.try_send(1, 9, &[1u8]).err()
            } else {
                None
            }
        });
        assert_eq!(errs[0], Some(CommError::RetriesExhausted { dest: 1, tag: 9, attempts: 3 }));
    }

    #[test]
    fn zero_fault_plan_matches_fast_path_results() {
        let run = |plan: Option<FaultPlan>| {
            World::run_faulted_with_stats(4, plan, |c| {
                let peer = c.rank() ^ 1;
                c.sendrecv(peer, 3, &[c.rank() as u64; 8])
            })
        };
        let (reliable, rstats) = run(Some(FaultPlan::default()));
        let (fast, fstats) = run(None);
        assert_eq!(reliable, fast);
        for (r, f) in rstats.iter().zip(&fstats) {
            assert_eq!(r.bytes_sent, f.bytes_sent);
            assert_eq!(r.messages_sent, f.messages_sent);
            assert_eq!(r.retries, 0);
            assert_eq!(r.faults_injected, 0);
        }
    }
}
