//! The SVE "machine" context: configured VL + instruction accounting.
//!
//! Kernels take a `&mut SveCtx` and issue operations through it. Every
//! method mirrors one SVE instruction and bumps the corresponding
//! [`InstrClass`] counter, so after running a kernel the context holds the
//! exact dynamic instruction mix for the timing model.

use crate::counter::{InstrClass, InstrCounts};
use crate::predicate::Pred;
use crate::vector::{VF64, VI64};
use crate::vl::Vl;

/// An SVE execution context: a vector length plus dynamic instruction
/// counters.
#[derive(Debug, Clone)]
pub struct SveCtx {
    vl: Vl,
    counts: InstrCounts,
}

impl SveCtx {
    /// Create a context with the given vector length.
    pub fn new(vl: Vl) -> SveCtx {
        SveCtx { vl, counts: InstrCounts::new() }
    }

    /// Create a context with the A64FX vector length (512 bits).
    pub fn a64fx() -> SveCtx {
        SveCtx::new(Vl::A64FX)
    }

    /// The configured vector length.
    #[inline]
    pub fn vl(&self) -> Vl {
        self.vl
    }

    /// Number of f64 lanes at the configured VL.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.vl.lanes_f64()
    }

    /// The instruction counts accumulated so far.
    pub fn counts(&self) -> &InstrCounts {
        &self.counts
    }

    /// Reset the instruction counters.
    pub fn reset_counts(&mut self) {
        self.counts = InstrCounts::new();
    }

    /// Account `n` instructions of `class` directly.
    ///
    /// Used by composite operations that crack into several µops
    /// (e.g. `ld2d` counts two loads) and by higher layers modelling
    /// instructions this crate does not execute lane-by-lane.
    #[inline]
    pub fn bump(&mut self, class: InstrClass, n: u64) {
        self.counts.bump(class, n);
    }

    // ----- predicates --------------------------------------------------

    /// `ptrue`.
    pub fn ptrue(&mut self) -> Pred {
        self.counts.bump(InstrClass::PredOp, 1);
        Pred::ptrue(self.vl)
    }

    /// `whilelt base, n`.
    pub fn whilelt(&mut self, base: usize, n: usize) -> Pred {
        self.counts.bump(InstrClass::PredOp, 1);
        Pred::whilelt(self.vl, base, n)
    }

    /// `ptest` (any lane active). Costs a predicate op like the hardware.
    pub fn any(&mut self, p: Pred) -> bool {
        self.counts.bump(InstrClass::PredOp, 1);
        p.any()
    }

    // ----- memory -------------------------------------------------------

    /// Contiguous predicated load from `src[0..]`.
    pub fn load(&mut self, p: Pred, src: &[f64]) -> VF64 {
        self.counts.bump(InstrClass::Load, 1);
        VF64::load(p, src)
    }

    /// Contiguous predicated store into `dst[0..]`.
    pub fn store(&mut self, v: VF64, p: Pred, dst: &mut [f64]) {
        self.counts.bump(InstrClass::Store, 1);
        v.store(p, dst);
    }

    /// Gather load.
    pub fn gather(&mut self, p: Pred, src: &[f64], idx: VI64) -> VF64 {
        self.counts.bump(InstrClass::Gather, 1);
        VF64::gather(p, src, idx)
    }

    /// Scatter store.
    pub fn scatter(&mut self, v: VF64, p: Pred, dst: &mut [f64], idx: VI64) {
        self.counts.bump(InstrClass::Scatter, 1);
        v.scatter(p, dst, idx);
    }

    // ----- arithmetic ----------------------------------------------------

    /// `dup` (broadcast). Counted as integer/move traffic.
    pub fn splat(&mut self, x: f64) -> VF64 {
        self.counts.bump(InstrClass::IArith, 1);
        VF64::splat(x)
    }

    /// `fadd`.
    pub fn add(&mut self, a: VF64, b: VF64) -> VF64 {
        self.counts.bump(InstrClass::FArith, 1);
        a.add(b)
    }

    /// `fsub`.
    pub fn sub(&mut self, a: VF64, b: VF64) -> VF64 {
        self.counts.bump(InstrClass::FArith, 1);
        a.sub(b)
    }

    /// `fmul`.
    pub fn mul(&mut self, a: VF64, b: VF64) -> VF64 {
        self.counts.bump(InstrClass::FArith, 1);
        a.mul(b)
    }

    /// `fmla`: `acc + a*b`.
    pub fn fma(&mut self, acc: VF64, a: VF64, b: VF64) -> VF64 {
        self.counts.bump(InstrClass::Fma, 1);
        acc.fma(a, b)
    }

    /// `fmls`: `acc - a*b`.
    pub fn fms(&mut self, acc: VF64, a: VF64, b: VF64) -> VF64 {
        self.counts.bump(InstrClass::Fma, 1);
        acc.fms(a, b)
    }

    /// `fneg`.
    pub fn neg(&mut self, a: VF64) -> VF64 {
        self.counts.bump(InstrClass::FArith, 1);
        a.neg()
    }

    /// `sel`.
    pub fn select(&mut self, p: Pred, a: VF64, b: VF64) -> VF64 {
        self.counts.bump(InstrClass::FArith, 1);
        a.select(p, b)
    }

    /// `index` vector construction.
    pub fn index(&mut self, base: i64, step: i64) -> VI64 {
        self.counts.bump(InstrClass::IArith, 1);
        VI64::index(base, step)
    }

    /// Integer vector add.
    pub fn iadd(&mut self, a: VI64, b: VI64) -> VI64 {
        self.counts.bump(InstrClass::IArith, 1);
        a.add(b)
    }

    /// `faddv` horizontal sum.
    pub fn hsum(&mut self, p: Pred, v: VF64) -> f64 {
        self.counts.bump(InstrClass::Reduce, 1);
        v.hsum(p)
    }

    // ----- derived metrics ------------------------------------------------

    /// Double-precision FLOPs implied by the counted instructions at this
    /// VL: FMA counts 2 flops/lane, other FP arith 1 flop/lane, reductions
    /// `lanes-1` adds.
    ///
    /// This over-counts partially-predicated final iterations (it assumes
    /// all lanes active), matching how hardware FLOP counters on the A64FX
    /// count committed SVE ops.
    pub fn flops(&self) -> u64 {
        let lanes = self.lanes() as u64;
        self.counts.fma * 2 * lanes
            + self.counts.farith * lanes
            + self.counts.reduce * lanes.saturating_sub(1)
    }

    /// Bytes moved to/from memory by the counted memory instructions at
    /// this VL (full-vector assumption, 8 bytes per lane).
    pub fn mem_bytes(&self) -> u64 {
        let bytes = self.lanes() as u64 * 8;
        self.counts.mem_instrs() * bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny VLA kernel: y[i] += a * x[i] (daxpy), counted.
    fn daxpy(ctx: &mut SveCtx, a: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len();
        let va = ctx.splat(a);
        let mut i = 0;
        let mut p = ctx.whilelt(i, n);
        while ctx.any(p) {
            let vx = ctx.load(p, &x[i..]);
            let vy = ctx.load(p, &y[i..]);
            let r = ctx.fma(vy, va, vx);
            ctx.store(r, p, &mut y[i..]);
            i += ctx.lanes();
            p = ctx.whilelt(i, n);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn daxpy_correct_at_every_vl() {
        let n = 37;
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        for vl in Vl::all() {
            let mut ctx = SveCtx::new(vl);
            let mut y = vec![1.0; n];
            daxpy(&mut ctx, 2.0, &x, &mut y);
            for i in 0..n {
                assert_eq!(y[i], 1.0 + 2.0 * i as f64, "vl={vl} i={i}");
            }
        }
    }

    #[test]
    fn longer_vl_issues_fewer_instructions() {
        let n = 1024;
        let x = vec![1.0; n];
        let mut totals = Vec::new();
        for vl in Vl::pow2_sweep() {
            let mut ctx = SveCtx::new(vl);
            let mut y = vec![0.0; n];
            daxpy(&mut ctx, 3.0, &x, &mut y);
            totals.push(ctx.counts().total());
        }
        // Doubling VL halves the loop trip count, so instruction totals
        // must strictly decrease across the sweep.
        assert!(totals.windows(2).all(|w| w[0] > w[1]), "{totals:?}");
    }

    #[test]
    fn instruction_mix_of_daxpy_iteration() {
        // n exactly one full vector: 1 iteration + final empty whilelt.
        let mut ctx = SveCtx::a64fx();
        let x = vec![1.0; 8];
        let mut y = vec![0.0; 8];
        daxpy(&mut ctx, 1.0, &x, &mut y);
        let c = ctx.counts();
        assert_eq!(c.load, 2);
        assert_eq!(c.store, 1);
        assert_eq!(c.fma, 1);
        // whilelt ×2 + ptest(any) ×2.
        assert_eq!(c.predop, 4);
    }

    #[test]
    fn flops_and_bytes_scale_with_vl() {
        let mut ctx = SveCtx::new(Vl::new(1024).unwrap()); // 16 lanes
        let p = ctx.ptrue();
        let a = ctx.splat(1.0);
        let b = ctx.splat(2.0);
        let c = ctx.fma(a, a, b);
        let mut dst = vec![0.0; 16];
        ctx.store(c, p, &mut dst);
        assert_eq!(ctx.flops(), 32); // 1 fma × 2 × 16 lanes
        assert_eq!(ctx.mem_bytes(), 128); // 1 store × 16 lanes × 8 B
    }

    #[test]
    fn reset_clears() {
        let mut ctx = SveCtx::a64fx();
        ctx.ptrue();
        assert!(ctx.counts().total() > 0);
        ctx.reset_counts();
        assert_eq!(ctx.counts().total(), 0);
    }
}
