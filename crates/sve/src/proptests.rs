//! Property-based tests for the SVE semantic layer.
//!
//! The central invariant: a vector-length-agnostic kernel computes the same
//! result at every legal VL. Each property runs a small kernel across the
//! full VL sweep and checks against a scalar reference.

use proptest::prelude::*;

use crate::complexv::CplxV;
use crate::ctx::SveCtx;
use crate::predicate::Pred;
use crate::vl::Vl;

/// VLA daxpy using the counted context.
fn daxpy_vla(vl: Vl, a: f64, x: &[f64], y: &mut [f64]) {
    let mut ctx = SveCtx::new(vl);
    let n = x.len();
    let va = ctx.splat(a);
    let mut i = 0;
    let mut p = ctx.whilelt(i, n);
    while ctx.any(p) {
        let vx = ctx.load(p, &x[i..]);
        let vy = ctx.load(p, &y[i..]);
        let r = ctx.fma(vy, va, vx);
        ctx.store(r, p, &mut y[i..]);
        i += ctx.lanes();
        p = ctx.whilelt(i, n);
    }
}

/// VLA dot product (strictly ordered reduction per vector, then across
/// vectors — deterministic for a fixed VL).
fn dot_vla(vl: Vl, x: &[f64], y: &[f64]) -> f64 {
    let mut ctx = SveCtx::new(vl);
    let n = x.len();
    let mut acc = 0.0;
    let mut i = 0;
    let mut p = ctx.whilelt(i, n);
    while ctx.any(p) {
        let vx = ctx.load(p, &x[i..]);
        let vy = ctx.load(p, &y[i..]);
        let prod = ctx.mul(vx, vy);
        acc += ctx.hsum(p, prod);
        i += ctx.lanes();
        p = ctx.whilelt(i, n);
    }
    acc
}

/// VLA complex scale of an interleaved buffer.
fn cscale_vla(vl: Vl, s: (f64, f64), buf: &mut [f64]) {
    let mut ctx = SveCtx::new(vl);
    let n = buf.len() / 2;
    let mut i = 0;
    let mut p = ctx.whilelt(i, n);
    while ctx.any(p) {
        let v = CplxV::ld2(&mut ctx, p, &buf[2 * i..]);
        let r = v.scale(&mut ctx, s.0, s.1);
        r.st2(&mut ctx, p, &mut buf[2 * i..]);
        i += ctx.lanes();
        p = ctx.whilelt(i, n);
    }
}

fn small_f64() -> impl Strategy<Value = f64> {
    (-100.0f64..100.0).prop_filter("finite", |x| x.is_finite())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// daxpy gives bit-identical results at every VL (FMA rounding is
    /// per-element, independent of vector grouping).
    #[test]
    fn daxpy_vl_agnostic(
        a in small_f64(),
        x in prop::collection::vec(small_f64(), 1..200),
    ) {
        let y0: Vec<f64> = x.iter().map(|v| v * 0.5 + 1.0).collect();
        let mut reference = y0.clone();
        for i in 0..x.len() {
            reference[i] = a.mul_add(x[i], reference[i]);
        }
        for vl in Vl::all() {
            let mut y = y0.clone();
            daxpy_vla(vl, a, &x, &mut y);
            prop_assert_eq!(&y, &reference, "vl={}", vl);
        }
    }

    /// Dot product agrees with a scalar reference to tight tolerance at
    /// every VL (exact equality is not required: reduction order differs).
    #[test]
    fn dot_close_at_every_vl(
        xy in prop::collection::vec((small_f64(), small_f64()), 1..200),
    ) {
        let x: Vec<f64> = xy.iter().map(|p| p.0).collect();
        let y: Vec<f64> = xy.iter().map(|p| p.1).collect();
        let reference: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        let scale = x.iter().zip(&y).map(|(a, b)| (a * b).abs()).sum::<f64>().max(1.0);
        for vl in Vl::pow2_sweep() {
            let d = dot_vla(vl, &x, &y);
            prop_assert!(((d - reference) / scale).abs() < 1e-12, "vl={} d={} ref={}", vl, d, reference);
        }
    }

    /// Complex scaling of an interleaved buffer is VL-agnostic and matches
    /// the scalar complex product.
    #[test]
    fn cscale_vl_agnostic(
        s in (small_f64(), small_f64()),
        pairs in prop::collection::vec((small_f64(), small_f64()), 1..100),
    ) {
        let buf0: Vec<f64> = pairs.iter().flat_map(|&(r, i)| [r, i]).collect();
        let reference: Vec<f64> = pairs
            .iter()
            .flat_map(|&(r, i)| {
                // (r + ii)(s.0 + s.1 i), with the same fused ordering the
                // kernel uses: re = fms(r*s.0, i, s.1), im = fma(r*s.1, i, s.0)
                let re = (-i).mul_add(s.1, r * s.0);
                let im = i.mul_add(s.0, r * s.1);
                [re, im]
            })
            .collect();
        for vl in Vl::pow2_sweep() {
            let mut buf = buf0.clone();
            cscale_vla(vl, s, &mut buf);
            prop_assert_eq!(&buf, &reference, "vl={}", vl);
        }
    }

    /// whilelt-driven loops touch each element exactly once for arbitrary n.
    #[test]
    fn whilelt_partitions_range(n in 0usize..500, vl_idx in 0usize..16) {
        let vl = Vl::all().nth(vl_idx).unwrap();
        let mut seen = vec![false; n];
        let mut base = 0;
        let mut p = Pred::whilelt(vl, base, n);
        while p.any() {
            for k in 0..vl.lanes_f64() {
                if p.lane(k) {
                    prop_assert!(!seen[base + k]);
                    seen[base + k] = true;
                }
            }
            base += vl.lanes_f64();
            p = Pred::whilelt(vl, base, n);
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Predicate algebra: (a AND b) ⊆ a, a ⊆ (a OR b), counts consistent.
    #[test]
    fn predicate_algebra_laws(mask_a in 0u32..256, mask_b in 0u32..256) {
        let vl = Vl::A64FX;
        let to_pred = |m: u32| {
            let bools: Vec<bool> = (0..8).map(|k| (m >> k) & 1 == 1).collect();
            Pred::from_bools(vl, &bools)
        };
        let a = to_pred(mask_a);
        let b = to_pred(mask_b);
        let and = a.and(b);
        let or = a.or(b);
        prop_assert_eq!(and.count() + or.count(), a.count() + b.count());
        prop_assert_eq!(and.or(a), a); // absorption
        prop_assert_eq!(a.and(a), a); // idempotence
        prop_assert_eq!(a.xor(a).count(), 0);
        prop_assert_eq!(a.not().not(), a);
    }
}
