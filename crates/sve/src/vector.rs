//! SVE data vectors: `f64` and `i64` lanes with predicated operations.
//!
//! Registers are stored at the architectural maximum width (32 × 64-bit
//! lanes); the configured VL only matters at predicate construction and
//! memory operations, mirroring real SVE where unpredicated arithmetic
//! always acts on the whole register.

// Method names (`add`, `mul`, `shl`, ...) mirror the SVE mnemonics, and
// per-lane index loops mirror the predicated semantics being modeled.
#![allow(clippy::should_implement_trait, clippy::needless_range_loop)]

use crate::predicate::Pred;
use crate::vl::MAX_LANES_F64;

/// A vector register of `f64` lanes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VF64 {
    pub(crate) l: [f64; MAX_LANES_F64],
}

/// A vector register of `i64` lanes (offsets/indices for gather/scatter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VI64 {
    pub(crate) l: [i64; MAX_LANES_F64],
}

impl VF64 {
    /// `dup`: broadcast a scalar to all lanes.
    #[inline]
    pub fn splat(x: f64) -> VF64 {
        VF64 { l: [x; MAX_LANES_F64] }
    }

    /// All-zero register.
    #[inline]
    pub fn zero() -> VF64 {
        VF64::splat(0.0)
    }

    /// Predicated contiguous load (`ld1d`); inactive lanes become zero
    /// (zeroing predication).
    ///
    /// Reads `src[k]` into lane `k` for each active lane; `src` must cover
    /// every active lane index.
    pub fn load(p: Pred, src: &[f64]) -> VF64 {
        let mut v = VF64::zero();
        for k in 0..p.vl().lanes_f64() {
            if p.lane(k) {
                v.l[k] = src[k];
            }
        }
        v
    }

    /// Predicated contiguous store (`st1d`): writes active lanes to
    /// `dst[k]`, leaves inactive lanes' memory untouched.
    pub fn store(self, p: Pred, dst: &mut [f64]) {
        for k in 0..p.vl().lanes_f64() {
            if p.lane(k) {
                dst[k] = self.l[k];
            }
        }
    }

    /// Gather load (`ld1d` with vector index): lane `k` reads
    /// `src[idx.lane(k)]` for active lanes; inactive lanes zero.
    pub fn gather(p: Pred, src: &[f64], idx: VI64) -> VF64 {
        let mut v = VF64::zero();
        for k in 0..p.vl().lanes_f64() {
            if p.lane(k) {
                v.l[k] = src[idx.l[k] as usize];
            }
        }
        v
    }

    /// Scatter store (`st1d` with vector index): lane `k` writes to
    /// `dst[idx.lane(k)]` for active lanes.
    ///
    /// Like hardware, the result is undefined in a useful sense if two
    /// active lanes alias the same address; here the highest lane wins.
    pub fn scatter(self, p: Pred, dst: &mut [f64], idx: VI64) {
        for k in 0..p.vl().lanes_f64() {
            if p.lane(k) {
                dst[idx.l[k] as usize] = self.l[k];
            }
        }
    }

    /// Lane accessor (for tests/debugging; not an SVE instruction).
    #[inline]
    pub fn lane(self, k: usize) -> f64 {
        self.l[k]
    }

    /// Set a lane (`insr`-ish; for building test fixtures).
    #[inline]
    pub fn with_lane(mut self, k: usize, x: f64) -> VF64 {
        self.l[k] = x;
        self
    }

    /// Unpredicated lane-wise addition.
    #[inline]
    pub fn add(self, o: VF64) -> VF64 {
        let mut r = self;
        for k in 0..MAX_LANES_F64 {
            r.l[k] += o.l[k];
        }
        r
    }

    /// Unpredicated lane-wise subtraction.
    #[inline]
    pub fn sub(self, o: VF64) -> VF64 {
        let mut r = self;
        for k in 0..MAX_LANES_F64 {
            r.l[k] -= o.l[k];
        }
        r
    }

    /// Unpredicated lane-wise multiplication.
    #[inline]
    pub fn mul(self, o: VF64) -> VF64 {
        let mut r = self;
        for k in 0..MAX_LANES_F64 {
            r.l[k] *= o.l[k];
        }
        r
    }

    /// Fused multiply-add: `self + a * b` lane-wise (`fmla`).
    #[inline]
    pub fn fma(self, a: VF64, b: VF64) -> VF64 {
        let mut r = self;
        for k in 0..MAX_LANES_F64 {
            r.l[k] = a.l[k].mul_add(b.l[k], r.l[k]);
        }
        r
    }

    /// Fused multiply-subtract: `self - a * b` lane-wise (`fmls`).
    #[inline]
    pub fn fms(self, a: VF64, b: VF64) -> VF64 {
        let mut r = self;
        for k in 0..MAX_LANES_F64 {
            r.l[k] = (-a.l[k]).mul_add(b.l[k], r.l[k]);
        }
        r
    }

    /// Lane-wise negation (`fneg`).
    #[inline]
    pub fn neg(self) -> VF64 {
        let mut r = self;
        for k in 0..MAX_LANES_F64 {
            r.l[k] = -r.l[k];
        }
        r
    }

    /// Predicated select (`sel`): active lanes from `self`, inactive from
    /// `other`.
    pub fn select(self, p: Pred, other: VF64) -> VF64 {
        let mut r = other;
        for k in 0..MAX_LANES_F64 {
            if p.lane(k) {
                r.l[k] = self.l[k];
            }
        }
        r
    }

    /// Predicated horizontal sum (`faddv`): sum of active lanes.
    ///
    /// Matches the SVE strictly-ordered reduction (left to right), which is
    /// what Fujitsu's compiler emits at -Kfast for reproducible reductions.
    pub fn hsum(self, p: Pred) -> f64 {
        let mut acc = 0.0;
        for k in 0..p.vl().lanes_f64() {
            if p.lane(k) {
                acc += self.l[k];
            }
        }
        acc
    }

    /// Predicated horizontal max (`fmaxv`) over active lanes; `None` if the
    /// predicate is empty.
    pub fn hmax(self, p: Pred) -> Option<f64> {
        let mut best: Option<f64> = None;
        for k in 0..p.vl().lanes_f64() {
            if p.lane(k) {
                best = Some(match best {
                    Some(b) => b.max(self.l[k]),
                    None => self.l[k],
                });
            }
        }
        best
    }
}

impl VI64 {
    /// Broadcast a scalar index to all lanes.
    #[inline]
    pub fn splat(x: i64) -> VI64 {
        VI64 { l: [x; MAX_LANES_F64] }
    }

    /// Build from explicit lane values (models the result of whatever
    /// index arithmetic produced them; callers account the instructions).
    pub fn from_lanes(lanes: &[i64; MAX_LANES_F64]) -> VI64 {
        VI64 { l: *lanes }
    }

    /// Copy with one lane replaced.
    pub fn with_lane(mut self, k: usize, x: i64) -> VI64 {
        self.l[k] = x;
        self
    }

    /// `index`: lane `k` gets `base + k * step` — the SVE idiom for
    /// building strided gather indices.
    pub fn index(base: i64, step: i64) -> VI64 {
        let mut v = VI64::splat(0);
        for k in 0..MAX_LANES_F64 {
            v.l[k] = base + (k as i64) * step;
        }
        v
    }

    /// Lane-wise addition.
    #[inline]
    pub fn add(self, o: VI64) -> VI64 {
        let mut r = self;
        for k in 0..MAX_LANES_F64 {
            r.l[k] = r.l[k].wrapping_add(o.l[k]);
        }
        r
    }

    /// Lane-wise bitwise AND.
    #[inline]
    pub fn and(self, o: VI64) -> VI64 {
        let mut r = self;
        for k in 0..MAX_LANES_F64 {
            r.l[k] &= o.l[k];
        }
        r
    }

    /// Lane-wise shift left by a scalar.
    #[inline]
    pub fn shl(self, sh: u32) -> VI64 {
        let mut r = self;
        for k in 0..MAX_LANES_F64 {
            r.l[k] <<= sh;
        }
        r
    }

    /// Lane accessor.
    #[inline]
    pub fn lane(self, k: usize) -> i64 {
        self.l[k]
    }

    /// Lane-wise compare-less-than against another vector, producing a
    /// predicate (`cmplt`).
    pub fn cmplt(self, p: Pred, o: VI64) -> Pred {
        let bools: Vec<bool> =
            (0..p.vl().lanes_f64()).map(|k| p.lane(k) && self.l[k] < o.l[k]).collect();
        Pred::from_bools(p.vl(), &bools)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vl::Vl;

    const VL: Vl = Vl::A64FX;

    fn seq(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64).collect()
    }

    #[test]
    fn splat_and_lanes() {
        let v = VF64::splat(3.25);
        for k in 0..MAX_LANES_F64 {
            assert_eq!(v.lane(k), 3.25);
        }
    }

    #[test]
    fn load_store_roundtrip_full_predicate() {
        let src = seq(8);
        let p = Pred::ptrue(VL);
        let v = VF64::load(p, &src);
        let mut dst = vec![0.0; 8];
        v.store(p, &mut dst);
        assert_eq!(dst, src);
    }

    #[test]
    fn partial_predicate_load_zeroes_inactive() {
        let src = seq(8);
        let p = Pred::whilelt(VL, 0, 3);
        let v = VF64::load(p, &src);
        assert_eq!(v.lane(0), 0.0);
        assert_eq!(v.lane(2), 2.0);
        assert_eq!(v.lane(3), 0.0, "inactive lane must be zeroed");
    }

    #[test]
    fn partial_predicate_store_preserves_inactive_memory() {
        let p = Pred::whilelt(VL, 0, 3);
        let v = VF64::splat(9.0);
        let mut dst = vec![-1.0; 8];
        v.store(p, &mut dst);
        assert_eq!(dst, vec![9.0, 9.0, 9.0, -1.0, -1.0, -1.0, -1.0, -1.0]);
    }

    #[test]
    fn gather_strided() {
        let src = seq(64);
        let p = Pred::ptrue(VL);
        let idx = VI64::index(1, 4); // 1, 5, 9, ...
        let v = VF64::gather(p, &src, idx);
        for k in 0..8 {
            assert_eq!(v.lane(k), (1 + 4 * k) as f64);
        }
    }

    #[test]
    fn scatter_strided() {
        let p = Pred::ptrue(VL);
        let idx = VI64::index(0, 2);
        let mut dst = vec![0.0; 16];
        VF64::splat(7.0).scatter(p, &mut dst, idx);
        for (i, &x) in dst.iter().enumerate() {
            assert_eq!(x, if i % 2 == 0 { 7.0 } else { 0.0 });
        }
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let src = seq(32);
        let p = Pred::whilelt(VL, 0, 6);
        let idx = VI64::index(3, 3);
        let v = VF64::gather(p, &src, idx);
        let mut dst = vec![0.0; 32];
        v.scatter(p, &mut dst, idx);
        for k in 0..6 {
            let a = 3 + 3 * k;
            assert_eq!(dst[a], src[a]);
        }
    }

    #[test]
    fn arithmetic() {
        let a = VF64::splat(2.0);
        let b = VF64::splat(3.0);
        assert_eq!(a.add(b).lane(0), 5.0);
        assert_eq!(a.sub(b).lane(0), -1.0);
        assert_eq!(a.mul(b).lane(0), 6.0);
        assert_eq!(a.neg().lane(0), -2.0);
    }

    #[test]
    fn fma_fms() {
        let acc = VF64::splat(1.0);
        let a = VF64::splat(2.0);
        let b = VF64::splat(3.0);
        assert_eq!(acc.fma(a, b).lane(5), 7.0); // 1 + 2*3
        assert_eq!(acc.fms(a, b).lane(5), -5.0); // 1 - 2*3
    }

    #[test]
    fn fma_is_fused() {
        // A fused multiply-add keeps the intermediate product unrounded:
        // with x = 1 + 2^-30, x*x - x*x computed as fma(x,x, -(x*x)) exposes
        // the rounding of the separate product.
        let x = 1.0 + (2.0f64).powi(-30);
        let prod = x * x;
        let r = VF64::splat(-prod).fma(VF64::splat(x), VF64::splat(x));
        let expected = x.mul_add(x, -prod);
        assert_eq!(r.lane(0), expected);
    }

    #[test]
    fn select_mixes_lanes() {
        let p = Pred::from_bools(VL, &[true, false, true, false, true, false, true, false]);
        let a = VF64::splat(1.0);
        let b = VF64::splat(2.0);
        let r = a.select(p, b);
        assert_eq!(r.lane(0), 1.0);
        assert_eq!(r.lane(1), 2.0);
    }

    #[test]
    fn horizontal_sum_respects_predicate() {
        let v = VF64::load(Pred::ptrue(VL), &seq(8));
        assert_eq!(v.hsum(Pred::ptrue(VL)), 28.0);
        let p = Pred::whilelt(VL, 0, 4);
        assert_eq!(v.hsum(p), 6.0);
        assert_eq!(v.hsum(Pred::pfalse(VL)), 0.0);
    }

    #[test]
    fn horizontal_max() {
        let v = VF64::load(Pred::ptrue(VL), &[3.0, -1.0, 7.0, 2.0, 0.0, 6.9, -8.0, 4.0]);
        assert_eq!(v.hmax(Pred::ptrue(VL)), Some(7.0));
        assert_eq!(v.hmax(Pred::whilelt(VL, 0, 2)), Some(3.0));
        assert_eq!(v.hmax(Pred::pfalse(VL)), None);
    }

    #[test]
    fn index_vector_arithmetic() {
        let i = VI64::index(10, 3);
        assert_eq!(i.lane(0), 10);
        assert_eq!(i.lane(4), 22);
        let j = i.add(VI64::splat(1)).shl(1);
        assert_eq!(j.lane(0), 22);
        assert_eq!(j.lane(1), 28);
        let m = i.and(VI64::splat(0xF));
        assert_eq!(m.lane(2), 16 & 0xF);
    }

    #[test]
    fn cmplt_builds_predicate() {
        let p = Pred::ptrue(VL);
        let i = VI64::index(0, 1);
        let q = i.cmplt(p, VI64::splat(3));
        assert_eq!(q.count(), 3);
        assert!(q.lane(0) && q.lane(2) && !q.lane(3));
    }
}
