//! SVE governing predicates.
//!
//! Almost every SVE instruction is governed by a predicate register that
//! enables or disables individual lanes. Loop control uses `whilelt`
//! ("while less-than"): the canonical VLA loop is
//!
//! ```text
//! i = 0
//! p = whilelt(i, n)
//! while any(p) {
//!     ... predicated vector body ...
//!     i += lanes
//!     p = whilelt(i, n)
//! }
//! ```
//!
//! [`Pred`] stores one bit per `f64` lane, sized for the architectural
//! maximum of 32 lanes, with lanes at or beyond the configured VL always
//! inactive.

use crate::vl::{Vl, MAX_LANES_F64};

/// A predicate register: one boolean per 64-bit lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pred {
    mask: u32,
    vl: Vl,
}

impl Pred {
    /// `ptrue`: all lanes up to the configured VL active.
    pub fn ptrue(vl: Vl) -> Pred {
        let lanes = vl.lanes_f64();
        let mask = if lanes == 32 { u32::MAX } else { (1u32 << lanes) - 1 };
        Pred { mask, vl }
    }

    /// `pfalse`: no lanes active.
    pub fn pfalse(vl: Vl) -> Pred {
        Pred { mask: 0, vl }
    }

    /// `whilelt(base, n)`: lane `k` is active iff `base + k < n`.
    ///
    /// This is the loop-control predicate of every vector-length-agnostic
    /// loop: full for whole vectors, partial on the final remainder
    /// iteration, empty once `base >= n`.
    pub fn whilelt(vl: Vl, base: usize, n: usize) -> Pred {
        let lanes = vl.lanes_f64();
        let mut mask = 0u32;
        for k in 0..lanes {
            if base + k < n {
                mask |= 1 << k;
            }
        }
        Pred { mask, vl }
    }

    /// Build a predicate from an explicit per-lane boolean slice.
    ///
    /// Lanes beyond `bools.len()` or beyond the VL are inactive.
    pub fn from_bools(vl: Vl, bools: &[bool]) -> Pred {
        let lanes = vl.lanes_f64().min(bools.len()).min(MAX_LANES_F64);
        let mut mask = 0u32;
        for (k, &b) in bools.iter().enumerate().take(lanes) {
            if b {
                mask |= 1 << k;
            }
        }
        Pred { mask, vl }
    }

    /// The configured vector length this predicate was built for.
    #[inline]
    pub fn vl(self) -> Vl {
        self.vl
    }

    /// Is lane `k` active?
    #[inline]
    pub fn lane(self, k: usize) -> bool {
        debug_assert!(k < MAX_LANES_F64);
        (self.mask >> k) & 1 == 1
    }

    /// `ptest`: is any lane active?
    #[inline]
    pub fn any(self) -> bool {
        self.mask != 0
    }

    /// Are all lanes up to the VL active?
    #[inline]
    pub fn all(self) -> bool {
        self == Pred::ptrue(self.vl)
    }

    /// `cntp`: number of active lanes.
    #[inline]
    pub fn count(self) -> usize {
        self.mask.count_ones() as usize
    }

    /// Index of the first active lane, if any (`brka`-style scan).
    pub fn first(self) -> Option<usize> {
        if self.mask == 0 {
            None
        } else {
            Some(self.mask.trailing_zeros() as usize)
        }
    }

    /// Index of the last active lane, if any.
    pub fn last(self) -> Option<usize> {
        if self.mask == 0 {
            None
        } else {
            Some(31 - self.mask.leading_zeros() as usize)
        }
    }

    /// Lane-wise AND of two predicates.
    ///
    /// Panics in debug builds if the predicates were built for different
    /// vector lengths — mixing VLs is a programming error in VLA code.
    pub fn and(self, other: Pred) -> Pred {
        debug_assert_eq!(self.vl, other.vl, "predicate VL mismatch");
        Pred { mask: self.mask & other.mask, vl: self.vl }
    }

    /// Lane-wise OR.
    pub fn or(self, other: Pred) -> Pred {
        debug_assert_eq!(self.vl, other.vl, "predicate VL mismatch");
        Pred { mask: self.mask | other.mask, vl: self.vl }
    }

    /// Lane-wise XOR (`eor`).
    pub fn xor(self, other: Pred) -> Pred {
        debug_assert_eq!(self.vl, other.vl, "predicate VL mismatch");
        Pred { mask: self.mask ^ other.mask, vl: self.vl }
    }

    /// Lane-wise NOT, restricted to lanes below the VL.
    #[allow(clippy::should_implement_trait)] // named after the SVE `not` mnemonic
    pub fn not(self) -> Pred {
        let full = Pred::ptrue(self.vl).mask;
        Pred { mask: !self.mask & full, vl: self.vl }
    }

    /// The raw lane mask (bit `k` = lane `k`).
    #[inline]
    pub fn mask(self) -> u32 {
        self.mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VL: Vl = Vl::A64FX; // 8 lanes

    #[test]
    fn ptrue_has_vl_lanes() {
        let p = Pred::ptrue(VL);
        assert_eq!(p.count(), 8);
        assert!(p.all());
        assert!(p.any());
        for k in 0..8 {
            assert!(p.lane(k));
        }
        assert!(!p.lane(8));
    }

    #[test]
    fn ptrue_max_vl_all_32_lanes() {
        let p = Pred::ptrue(Vl::MAX);
        assert_eq!(p.count(), 32);
        assert!(p.all());
    }

    #[test]
    fn pfalse_empty() {
        let p = Pred::pfalse(VL);
        assert_eq!(p.count(), 0);
        assert!(!p.any());
        assert_eq!(p.first(), None);
        assert_eq!(p.last(), None);
    }

    #[test]
    fn whilelt_full_vector() {
        let p = Pred::whilelt(VL, 0, 100);
        assert!(p.all());
    }

    #[test]
    fn whilelt_remainder() {
        // n = 19, base = 16 with 8 lanes: lanes 0..3 active (16,17,18 < 19).
        let p = Pred::whilelt(VL, 16, 19);
        assert_eq!(p.count(), 3);
        assert!(p.lane(0) && p.lane(1) && p.lane(2));
        assert!(!p.lane(3));
    }

    #[test]
    fn whilelt_exhausted() {
        let p = Pred::whilelt(VL, 24, 19);
        assert!(!p.any());
    }

    #[test]
    fn whilelt_loop_covers_exactly_n() {
        // The canonical VLA loop must touch each index exactly once.
        for n in [0usize, 1, 7, 8, 9, 63, 64, 65] {
            let mut touched = vec![0u32; n];
            let mut base = 0;
            let mut p = Pred::whilelt(VL, base, n);
            while p.any() {
                for k in 0..VL.lanes_f64() {
                    if p.lane(k) {
                        touched[base + k] += 1;
                    }
                }
                base += VL.lanes_f64();
                p = Pred::whilelt(VL, base, n);
            }
            assert!(touched.iter().all(|&c| c == 1), "n={n}");
        }
    }

    #[test]
    fn boolean_algebra() {
        let a = Pred::from_bools(VL, &[true, false, true, false, true, false, true, false]);
        let b = Pred::from_bools(VL, &[true, true, false, false, true, true, false, false]);
        assert_eq!(a.and(b).count(), 2); // lanes 0, 4
        assert_eq!(a.or(b).count(), 6);
        assert_eq!(a.xor(b).count(), 4);
        assert_eq!(a.not().count(), 4);
        // De Morgan on the masked domain.
        assert_eq!(a.and(b).not(), a.not().or(b.not()));
    }

    #[test]
    fn first_and_last() {
        let p = Pred::from_bools(VL, &[false, false, true, false, true, false, false, false]);
        assert_eq!(p.first(), Some(2));
        assert_eq!(p.last(), Some(4));
    }

    #[test]
    fn not_does_not_leak_beyond_vl() {
        let p = Pred::pfalse(VL).not();
        assert_eq!(p.count(), VL.lanes_f64());
        assert!(!p.lane(8));
    }
}
