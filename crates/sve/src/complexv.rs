//! Complex vectors in split representation with `ld2`/`st2` structure
//! loads.
//!
//! State-vector amplitudes are stored interleaved in memory
//! (`re0, im0, re1, im1, ...`). SVE's structure loads (`ld2d`) de-interleave
//! into two registers — one of real parts, one of imaginary parts — which
//! is how Fujitsu's compiler and hand-written A64FX kernels handle complex
//! arithmetic: the split form needs no shuffles inside the multiply.
//!
//! A complex multiply `(a+bi)(c+di)` in split form is four FMAs:
//!
//! ```text
//! re = a*c - b*d   →  fmul + fmls  (or 2 fma against an accumulator)
//! im = a*d + b*c   →  fmul + fmla
//! ```

use crate::ctx::SveCtx;
use crate::predicate::Pred;
use crate::vector::{VF64, VI64};

/// A vector of complex numbers: split into real-part lanes and
/// imaginary-part lanes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CplxV {
    /// Real parts.
    pub re: VF64,
    /// Imaginary parts.
    pub im: VF64,
}

impl CplxV {
    /// Broadcast one complex scalar to all lanes.
    pub fn splat(ctx: &mut SveCtx, re: f64, im: f64) -> CplxV {
        CplxV { re: ctx.splat(re), im: ctx.splat(im) }
    }

    /// All-zero complex vector.
    pub fn zero() -> CplxV {
        CplxV { re: VF64::zero(), im: VF64::zero() }
    }

    /// `ld2d`: de-interleaving load of `count ≤ lanes` complex numbers
    /// starting at complex index 0 of `interleaved` (`re,im` pairs).
    ///
    /// Counted as two contiguous loads — the A64FX cracks `ld2d` into two
    /// µops on the load pipes.
    pub fn ld2(ctx: &mut SveCtx, p: Pred, interleaved: &[f64]) -> CplxV {
        let mut re = VF64::zero();
        let mut im = VF64::zero();
        for k in 0..p.vl().lanes_f64() {
            if p.lane(k) {
                re = re.with_lane(k, interleaved[2 * k]);
                im = im.with_lane(k, interleaved[2 * k + 1]);
            }
        }
        ctx.bump(crate::counter::InstrClass::Load, 2);
        CplxV { re, im }
    }

    /// `st2d`: interleaving store, inverse of [`CplxV::ld2`].
    pub fn st2(self, ctx: &mut SveCtx, p: Pred, interleaved: &mut [f64]) {
        for k in 0..p.vl().lanes_f64() {
            if p.lane(k) {
                interleaved[2 * k] = self.re.lane(k);
                interleaved[2 * k + 1] = self.im.lane(k);
            }
        }
        ctx.bump(crate::counter::InstrClass::Store, 2);
    }

    /// Gather `count` complex numbers whose *complex* indices are given by
    /// `idx`, from an interleaved buffer. Cracks into two gathers.
    pub fn gather(ctx: &mut SveCtx, p: Pred, interleaved: &[f64], idx: VI64) -> CplxV {
        let byte_idx_re = idx.shl(1);
        let byte_idx_im = byte_idx_re.add(VI64::splat(1));
        let re = ctx.gather(p, interleaved, byte_idx_re);
        let im = ctx.gather(p, interleaved, byte_idx_im);
        CplxV { re, im }
    }

    /// Scatter to *complex* indices `idx` of an interleaved buffer.
    pub fn scatter(self, ctx: &mut SveCtx, p: Pred, interleaved: &mut [f64], idx: VI64) {
        let i_re = idx.shl(1);
        let i_im = i_re.add(VI64::splat(1));
        ctx.scatter(self.re, p, interleaved, i_re);
        ctx.scatter(self.im, p, interleaved, i_im);
    }

    /// Complex addition.
    pub fn add(self, ctx: &mut SveCtx, o: CplxV) -> CplxV {
        CplxV { re: ctx.add(self.re, o.re), im: ctx.add(self.im, o.im) }
    }

    /// Complex multiply: `self * o`, 4 FP ops in split form
    /// (fmul, fmls, fmul, fmla).
    pub fn mul(self, ctx: &mut SveCtx, o: CplxV) -> CplxV {
        let t_re = ctx.mul(self.re, o.re); // a*c
        let re = ctx.fms(t_re, self.im, o.im); // a*c - b*d
        let t_im = ctx.mul(self.re, o.im); // a*d
        let im = ctx.fma(t_im, self.im, o.re); // a*d + b*c
        CplxV { re, im }
    }

    /// Complex fused multiply-add: `acc + self * o`, 4 FMAs — the core of
    /// every gate kernel (amplitude × matrix element, accumulated).
    pub fn fma(self, ctx: &mut SveCtx, o: CplxV, acc: CplxV) -> CplxV {
        let r1 = ctx.fma(acc.re, self.re, o.re); // acc.re + a*c
        let re = ctx.fms(r1, self.im, o.im); //        - b*d
        let i1 = ctx.fma(acc.im, self.re, o.im); // acc.im + a*d
        let im = ctx.fma(i1, self.im, o.re); //        + b*c
        CplxV { re, im }
    }

    /// Multiply by a complex scalar broadcast (matrix element).
    pub fn scale(self, ctx: &mut SveCtx, re: f64, im: f64) -> CplxV {
        let s = CplxV::splat(ctx, re, im);
        self.mul(ctx, s)
    }

    /// Squared magnitudes per lane: `re² + im²` (one fmul + one fma).
    pub fn norm_sqr(self, ctx: &mut SveCtx) -> VF64 {
        let rr = ctx.mul(self.re, self.re);
        ctx.fma(rr, self.im, self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vl::Vl;

    fn interleave(cs: &[(f64, f64)]) -> Vec<f64> {
        cs.iter().flat_map(|&(r, i)| [r, i]).collect()
    }

    #[test]
    fn ld2_st2_roundtrip() {
        let src = interleave(&[(1.0, 2.0), (3.0, 4.0), (5.0, 6.0), (7.0, 8.0)]);
        let mut ctx = SveCtx::new(Vl::new(256).unwrap()); // 4 lanes
        let p = ctx.ptrue();
        let v = CplxV::ld2(&mut ctx, p, &src);
        assert_eq!(v.re.lane(0), 1.0);
        assert_eq!(v.im.lane(0), 2.0);
        assert_eq!(v.re.lane(3), 7.0);
        let mut dst = vec![0.0; 8];
        v.st2(&mut ctx, p, &mut dst);
        assert_eq!(dst, src);
    }

    #[test]
    fn ld2_counts_two_loads() {
        let src = interleave(&[(0.0, 0.0); 8]);
        let mut ctx = SveCtx::a64fx();
        let p = ctx.ptrue();
        let _ = CplxV::ld2(&mut ctx, p, &src);
        assert_eq!(ctx.counts().load, 2);
    }

    #[test]
    fn complex_mul_matches_scalar() {
        let a = (3.0, -2.0);
        let b = (-1.5, 4.0);
        let mut ctx = SveCtx::a64fx();
        let va = CplxV::splat(&mut ctx, a.0, a.1);
        let vb = CplxV::splat(&mut ctx, b.0, b.1);
        let r = va.mul(&mut ctx, vb);
        let exp_re = a.0 * b.0 - a.1 * b.1;
        let exp_im = a.0 * b.1 + a.1 * b.0;
        assert!((r.re.lane(0) - exp_re).abs() < 1e-15);
        assert!((r.im.lane(0) - exp_im).abs() < 1e-15);
    }

    #[test]
    fn complex_fma_matches_scalar() {
        let a = (1.0, 2.0);
        let b = (3.0, 4.0);
        let acc = (10.0, 20.0);
        let mut ctx = SveCtx::a64fx();
        let va = CplxV::splat(&mut ctx, a.0, a.1);
        let vb = CplxV::splat(&mut ctx, b.0, b.1);
        let vacc = CplxV::splat(&mut ctx, acc.0, acc.1);
        let r = va.fma(&mut ctx, vb, vacc);
        assert!((r.re.lane(0) - (10.0 + (1.0 * 3.0 - 2.0 * 4.0))).abs() < 1e-15);
        assert!((r.im.lane(0) - (20.0 + (1.0 * 4.0 + 2.0 * 3.0))).abs() < 1e-15);
    }

    #[test]
    fn fma_uses_four_fp_ops() {
        let mut ctx = SveCtx::a64fx();
        let a = CplxV::zero();
        let before = ctx.counts().fp_instrs();
        let _ = a.fma(&mut ctx, CplxV::zero(), CplxV::zero());
        assert_eq!(ctx.counts().fp_instrs() - before, 4);
    }

    #[test]
    fn gather_scatter_complex_indices() {
        let src = interleave(&[
            (0.0, 0.5),
            (1.0, 1.5),
            (2.0, 2.5),
            (3.0, 3.5),
            (4.0, 4.5),
            (5.0, 5.5),
            (6.0, 6.5),
            (7.0, 7.5),
        ]);
        let mut ctx = SveCtx::new(Vl::new(256).unwrap());
        let p = ctx.ptrue();
        let idx = ctx.index(1, 2); // complex elements 1,3,5,7
        let v = CplxV::gather(&mut ctx, p, &src, idx);
        assert_eq!(v.re.lane(0), 1.0);
        assert_eq!(v.im.lane(0), 1.5);
        assert_eq!(v.re.lane(3), 7.0);

        let mut dst = vec![0.0; 16];
        v.scatter(&mut ctx, p, &mut dst, idx);
        assert_eq!(dst[2], 1.0);
        assert_eq!(dst[3], 1.5);
        assert_eq!(dst[14], 7.0);
        assert_eq!(dst[15], 7.5);
        assert_eq!(dst[0], 0.0);
    }

    #[test]
    fn norm_sqr() {
        let mut ctx = SveCtx::a64fx();
        let v = CplxV::splat(&mut ctx, 3.0, 4.0);
        let n = v.norm_sqr(&mut ctx);
        assert_eq!(n.lane(0), 25.0);
    }

    #[test]
    fn scale_by_unit() {
        let mut ctx = SveCtx::a64fx();
        let v = CplxV::splat(&mut ctx, 2.0, -1.0);
        // multiply by i: (2 - i) * i = 1 + 2i
        let r = v.scale(&mut ctx, 0.0, 1.0);
        assert!((r.re.lane(0) - 1.0).abs() < 1e-15);
        assert!((r.im.lane(0) - 2.0).abs() < 1e-15);
    }
}
