//! Vector length configuration.
//!
//! SVE allows implementations to pick any vector length between 128 and
//! 2048 bits in 128-bit increments. The A64FX uses 512 bits. [`Vl`] carries
//! the configured length and answers "how many lanes of type T fit".

/// Maximum number of `f64` lanes a 2048-bit register can hold.
///
/// Vector register storage in this crate is sized for the architectural
/// maximum so the same types serve every configured VL.
pub const MAX_LANES_F64: usize = 2048 / 64;

/// A configured SVE vector length in bits.
///
/// Valid values are multiples of 128 in `128..=2048`, matching the SVE
/// architecture. Construction through [`Vl::new`] validates this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vl {
    bits: u16,
}

impl Vl {
    /// The A64FX hardware vector length (512 bits = 8 × `f64`).
    pub const A64FX: Vl = Vl { bits: 512 };
    /// The architectural minimum (128 bits = 2 × `f64`).
    pub const MIN: Vl = Vl { bits: 128 };
    /// The architectural maximum (2048 bits = 32 × `f64`).
    pub const MAX: Vl = Vl { bits: 2048 };

    /// Create a vector length of `bits` bits.
    ///
    /// Returns `None` unless `bits` is a multiple of 128 in `128..=2048`.
    pub fn new(bits: u16) -> Option<Vl> {
        if (128..=2048).contains(&bits) && bits.is_multiple_of(128) {
            Some(Vl { bits })
        } else {
            None
        }
    }

    /// All valid SVE vector lengths, smallest first.
    pub fn all() -> impl Iterator<Item = Vl> {
        (1..=16u16).map(|k| Vl { bits: k * 128 })
    }

    /// The common power-of-two sweep used in the authors' VL studies:
    /// 128, 256, 512, 1024, 2048 bits.
    pub fn pow2_sweep() -> [Vl; 5] {
        [Vl { bits: 128 }, Vl { bits: 256 }, Vl { bits: 512 }, Vl { bits: 1024 }, Vl { bits: 2048 }]
    }

    /// Length in bits.
    #[inline]
    pub fn bits(self) -> u16 {
        self.bits
    }

    /// Length in bytes.
    #[inline]
    pub fn bytes(self) -> usize {
        self.bits as usize / 8
    }

    /// Number of `f64` (double-precision) lanes.
    #[inline]
    pub fn lanes_f64(self) -> usize {
        self.bits as usize / 64
    }

    /// Number of `i64` lanes (same as `f64`).
    #[inline]
    pub fn lanes_i64(self) -> usize {
        self.lanes_f64()
    }
}

impl Default for Vl {
    /// Defaults to the A64FX hardware vector length.
    fn default() -> Self {
        Vl::A64FX
    }
}

impl std::fmt::Display for Vl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VL{}", self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_lengths_accepted() {
        for k in 1..=16u16 {
            let vl = Vl::new(k * 128).expect("multiple of 128 in range");
            assert_eq!(vl.bits(), k * 128);
            assert_eq!(vl.lanes_f64(), (k as usize * 128) / 64);
        }
    }

    #[test]
    fn invalid_lengths_rejected() {
        assert!(Vl::new(0).is_none());
        assert!(Vl::new(64).is_none());
        assert!(Vl::new(130).is_none());
        assert!(Vl::new(2176).is_none());
        assert!(Vl::new(192).is_none());
    }

    #[test]
    fn a64fx_is_512() {
        assert_eq!(Vl::A64FX.bits(), 512);
        assert_eq!(Vl::A64FX.lanes_f64(), 8);
        assert_eq!(Vl::A64FX.bytes(), 64);
    }

    #[test]
    fn default_is_a64fx() {
        assert_eq!(Vl::default(), Vl::A64FX);
    }

    #[test]
    fn all_yields_sixteen() {
        let v: Vec<Vl> = Vl::all().collect();
        assert_eq!(v.len(), 16);
        assert_eq!(v[0], Vl::MIN);
        assert_eq!(v[15], Vl::MAX);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn pow2_sweep_matches_paper_methodology() {
        let sweep = Vl::pow2_sweep();
        assert_eq!(
            sweep.iter().map(|v| v.bits()).collect::<Vec<_>>(),
            vec![128, 256, 512, 1024, 2048]
        );
    }

    #[test]
    fn max_lanes_covers_max_vl() {
        assert_eq!(Vl::MAX.lanes_f64(), MAX_LANES_F64);
    }

    #[test]
    fn display_format() {
        assert_eq!(Vl::A64FX.to_string(), "VL512");
    }
}
