//! `sve-sim`: a vector-length-agnostic (VLA) semantic layer modelling ARM SVE
//! in portable Rust.
//!
//! The Fujitsu A64FX implements the ARM Scalable Vector Extension with a
//! 512-bit vector length. SVE programs are written *vector-length agnostic*:
//! the same code runs at any hardware VL from 128 to 2048 bits. This crate
//! reproduces that programming model so that kernels written against it can
//! be swept across vector lengths (the methodology of Odajima/Kodama/Sato's
//! SVE studies) without hardware:
//!
//! * [`Vl`] — a vector length, 128..=2048 bits in multiples of 128.
//! * [`Pred`] — a governing predicate (`whilelt`, `ptrue`, boolean algebra).
//! * [`VF64`] / [`VI64`] — `f64` / `i64` vector registers with predicated
//!   loads, stores, arithmetic, FMA, gather/scatter.
//! * [`CplxV`] — split-representation complex vectors with `ld2`/`st2`
//!   style de-interleaving loads, complex multiply and complex FMA.
//! * [`SveCtx`] — a "machine" handle carrying the configured VL and an
//!   instruction-class counter ([`InstrCounts`]) so that kernel executions
//!   can be fed to the `a64fx-model` timing model (issue-limited vs
//!   memory-limited analysis).
//!
//! The implementation favours semantic fidelity over raw speed: every lane
//! is computed explicitly. Production kernels in `qcs-core` have scalar
//! (autovectorized) twins; this layer exists so that VL sensitivity and
//! instruction mixes can be *measured*, which is what the reproduction
//! needs.

pub mod complexv;
pub mod counter;
pub mod ctx;
pub mod predicate;
pub mod vector;
pub mod vl;

pub use complexv::CplxV;
pub use counter::{InstrClass, InstrCounts};
pub use ctx::SveCtx;
pub use predicate::Pred;
pub use vector::{VF64, VI64};
pub use vl::{Vl, MAX_LANES_F64};

#[cfg(test)]
mod proptests;
