//! Instruction-class accounting.
//!
//! The A64FX analyses in the source papers distinguish kernels that are
//! limited by instruction *issue* (too many instructions per element, cured
//! by longer vectors) from kernels limited by *memory bandwidth*
//! (VL-insensitive). To reproduce that analysis without hardware counters,
//! every [`crate::SveCtx`] operation increments a class counter here; the
//! `a64fx-model` timing model converts the mix into predicted cycles.

/// Classes of SVE instructions tracked by the model.
///
/// The grouping follows the A64FX pipeline structure: FLA/FLB floating
/// pipes, the load/store pipes, the predicate unit, and the
/// gather/scatter sequencer (which on A64FX cracks into one µop per
/// 128-bit element pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// Contiguous vector load (`ld1d`).
    Load,
    /// Contiguous vector store (`st1d`).
    Store,
    /// Gather load (`ld1d` with vector addressing).
    Gather,
    /// Scatter store (`st1d` with vector addressing).
    Scatter,
    /// Floating multiply-add/sub (`fmla`/`fmls`) — one FLA/FLB op.
    Fma,
    /// Other floating arithmetic (`fadd`, `fsub`, `fmul`, `fneg`, `sel`).
    FArith,
    /// Integer/index arithmetic on vectors.
    IArith,
    /// Predicate manipulation (`whilelt`, `ptest`, boolean ops).
    PredOp,
    /// Horizontal reductions (`faddv`, `fmaxv`).
    Reduce,
}

/// All instruction classes, for iteration in reports.
pub const ALL_CLASSES: [InstrClass; 9] = [
    InstrClass::Load,
    InstrClass::Store,
    InstrClass::Gather,
    InstrClass::Scatter,
    InstrClass::Fma,
    InstrClass::FArith,
    InstrClass::IArith,
    InstrClass::PredOp,
    InstrClass::Reduce,
];

/// Counters for each instruction class plus derived quantities.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstrCounts {
    pub load: u64,
    pub store: u64,
    pub gather: u64,
    pub scatter: u64,
    pub fma: u64,
    pub farith: u64,
    pub iarith: u64,
    pub predop: u64,
    pub reduce: u64,
}

impl InstrCounts {
    /// A zeroed counter set.
    pub fn new() -> InstrCounts {
        InstrCounts::default()
    }

    /// Increment one class by `n`.
    #[inline]
    pub fn bump(&mut self, class: InstrClass, n: u64) {
        match class {
            InstrClass::Load => self.load += n,
            InstrClass::Store => self.store += n,
            InstrClass::Gather => self.gather += n,
            InstrClass::Scatter => self.scatter += n,
            InstrClass::Fma => self.fma += n,
            InstrClass::FArith => self.farith += n,
            InstrClass::IArith => self.iarith += n,
            InstrClass::PredOp => self.predop += n,
            InstrClass::Reduce => self.reduce += n,
        }
    }

    /// Read one class.
    pub fn get(&self, class: InstrClass) -> u64 {
        match class {
            InstrClass::Load => self.load,
            InstrClass::Store => self.store,
            InstrClass::Gather => self.gather,
            InstrClass::Scatter => self.scatter,
            InstrClass::Fma => self.fma,
            InstrClass::FArith => self.farith,
            InstrClass::IArith => self.iarith,
            InstrClass::PredOp => self.predop,
            InstrClass::Reduce => self.reduce,
        }
    }

    /// Total instructions of every class.
    pub fn total(&self) -> u64 {
        ALL_CLASSES.iter().map(|&c| self.get(c)).sum()
    }

    /// Floating-point instructions (the FLA/FLB pipe load).
    pub fn fp_instrs(&self) -> u64 {
        self.fma + self.farith + self.reduce
    }

    /// Memory instructions (the load/store pipe load). Gathers/scatters
    /// count here once; their sequencer cracking is applied in the timing
    /// model, not the raw count.
    pub fn mem_instrs(&self) -> u64 {
        self.load + self.store + self.gather + self.scatter
    }

    /// Merge another counter set into this one (for parallel aggregation).
    pub fn merge(&mut self, other: &InstrCounts) {
        for c in ALL_CLASSES {
            self.bump(c, other.get(c));
        }
    }
}

impl std::fmt::Display for InstrCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ld={} st={} ga={} sc={} fma={} fa={} ia={} pr={} rd={}",
            self.load,
            self.store,
            self.gather,
            self.scatter,
            self.fma,
            self.farith,
            self.iarith,
            self.predop,
            self.reduce
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_get_every_class() {
        let mut c = InstrCounts::new();
        for (i, &class) in ALL_CLASSES.iter().enumerate() {
            c.bump(class, (i + 1) as u64);
            assert_eq!(c.get(class), (i + 1) as u64);
        }
        assert_eq!(c.total(), (1..=9).sum::<u64>());
    }

    #[test]
    fn derived_groups() {
        let mut c = InstrCounts::new();
        c.bump(InstrClass::Fma, 10);
        c.bump(InstrClass::FArith, 5);
        c.bump(InstrClass::Reduce, 1);
        c.bump(InstrClass::Load, 4);
        c.bump(InstrClass::Gather, 2);
        assert_eq!(c.fp_instrs(), 16);
        assert_eq!(c.mem_instrs(), 6);
    }

    #[test]
    fn merge_adds() {
        let mut a = InstrCounts::new();
        a.bump(InstrClass::Load, 3);
        let mut b = InstrCounts::new();
        b.bump(InstrClass::Load, 4);
        b.bump(InstrClass::Fma, 7);
        a.merge(&b);
        assert_eq!(a.load, 7);
        assert_eq!(a.fma, 7);
    }

    #[test]
    fn display_is_stable() {
        let c = InstrCounts::new();
        assert_eq!(c.to_string(), "ld=0 st=0 ga=0 sc=0 fma=0 fa=0 ia=0 pr=0 rd=0");
    }
}
