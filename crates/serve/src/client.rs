//! A tiny blocking HTTP client for the job API.
//!
//! One request per connection (`Connection: close`) — deliberately the
//! simplest thing that exercises the server's socket path. Shared by
//! the conformance suite, the throughput bench, and CLI smoke tests.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Issue one request; returns `(status, body)`.
pub fn http_request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "no address"))?;
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    parse_response(&response)
}

/// Submit a job and return its id (panics on a non-2xx or malformed
/// response — bench/test helper ergonomics).
pub fn submit_job(addr: impl ToSocketAddrs, body: &str) -> std::io::Result<u64> {
    let (status, resp) = http_request(addr, "POST", "/jobs", body)?;
    if status != 202 {
        return Err(std::io::Error::other(format!("submit returned {status}: {resp}")));
    }
    crate::json::parse(&resp)
        .ok()
        .and_then(|v| v.get("job_id").and_then(crate::json::Value::as_u64))
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no job_id"))
}

/// Poll `GET /jobs/<id>` until the job leaves the queue; returns the
/// final status string (`done` / `failed`).
pub fn wait_for_job(addr: impl ToSocketAddrs + Copy, id: u64) -> std::io::Result<String> {
    loop {
        let (status, body) = http_request(addr, "GET", &format!("/jobs/{id}"), "")?;
        if status != 200 {
            return Err(std::io::Error::other(format!("status poll returned {status}: {body}")));
        }
        let state = crate::json::parse(&body)
            .ok()
            .and_then(|v| v.get("status").and_then(|s| s.as_str().map(String::from)))
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status"))?;
        if state == "done" || state == "failed" {
            return Ok(state);
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn parse_response(raw: &str) -> std::io::Result<(u16, String)> {
    let bad = |why: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, why);
    let (head, body) = raw.split_once("\r\n\r\n").ok_or_else(|| bad("no header break"))?;
    let status_line = head.lines().next().ok_or_else(|| bad("empty response"))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    Ok((status, body.to_string()))
}
