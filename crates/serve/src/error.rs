//! [`QcsError`]: the one top-level error enum the service speaks.
//!
//! `qcs-core` has [`SimError`] and [`IoError`], `qcs-dist` has
//! [`DistError`], and the server adds its own admission failures. The
//! wire protocol needs exactly one mapping from "anything went wrong"
//! to an HTTP status plus a *stable* machine-readable code string —
//! clients match on `"serve/quota-exceeded"`, not on English prose that
//! may be reworded. `From` conversions fold every lower-level error in,
//! so handler code is plain `?`.

use qcs_core::io::IoError;
use qcs_core::qasm::QasmError;
use qcs_core::sim::SimError;
use qcs_dist::error::DistError;

/// Top-level error: every failure the service can surface.
#[derive(Debug)]
pub enum QcsError {
    /// Simulation engine failure.
    Sim(SimError),
    /// State-file persistence failure.
    Io(IoError),
    /// Distributed engine failure.
    Dist(DistError),
    /// The request itself is invalid (malformed JSON, unknown gate,
    /// out-of-range qubit, bad strategy string, …).
    BadRequest(String),
    /// No such job (or endpoint).
    NotFound(String),
    /// The tenant is at its concurrent-job quota.
    QuotaExceeded { tenant: String, limit: usize },
    /// The global admission queue is full; retry later.
    QueueFull { limit: usize },
    /// The requested width exceeds what this server admits.
    TooWide { n: u32, max: u32 },
}

impl QcsError {
    /// Stable machine-readable code, one per variant (and one per
    /// underlying variant for the wrapped enums). Part of the public
    /// wire contract: codes never change meaning, new ones may appear.
    pub fn code(&self) -> &'static str {
        match self {
            QcsError::Sim(e) => match e {
                SimError::QubitMismatch { .. } => "sim/qubit-mismatch",
                SimError::InvalidConfig(_) => "sim/invalid-config",
                SimError::TraceIo(_) => "sim/trace-io",
                SimError::Integrity(_) => "sim/integrity",
                SimError::Checkpoint(_) => "sim/checkpoint",
            },
            QcsError::Io(e) => match e {
                IoError::Io(_) => "io/os",
                IoError::BadMagic => "io/bad-magic",
                IoError::Truncated { .. } => "io/truncated",
                IoError::NonFinite { .. } => "io/non-finite",
                IoError::ChecksumMismatch { .. } => "io/checksum-mismatch",
                IoError::Corrupt(_) => "io/corrupt",
            },
            QcsError::Dist(e) => match e {
                DistError::UnsupportedGate { .. } => "dist/unsupported-gate",
                DistError::WidthMismatch { .. } => "dist/width-mismatch",
                DistError::Exchange(_) => "dist/exchange",
                DistError::Integrity(_) => "dist/integrity",
                DistError::Checkpoint(_) => "dist/checkpoint",
                DistError::Injected { .. } => "dist/injected-fault",
                DistError::RecoveryExhausted { .. } => "dist/recovery-exhausted",
                DistError::Internal(_) => "dist/internal",
            },
            QcsError::BadRequest(_) => "serve/bad-request",
            QcsError::NotFound(_) => "serve/not-found",
            QcsError::QuotaExceeded { .. } => "serve/quota-exceeded",
            QcsError::QueueFull { .. } => "serve/queue-full",
            QcsError::TooWide { .. } => "serve/too-wide",
        }
    }

    /// The single error→HTTP-status mapping the server uses. Client
    /// mistakes are 4xx, engine failures 5xx.
    pub fn http_status(&self) -> u16 {
        match self {
            QcsError::BadRequest(_) | QcsError::TooWide { .. } => 400,
            QcsError::NotFound(_) => 404,
            QcsError::QuotaExceeded { .. } => 429,
            QcsError::QueueFull { .. } => 503,
            // A config the engine rejected is the submitter's fault.
            QcsError::Sim(SimError::QubitMismatch { .. })
            | QcsError::Sim(SimError::InvalidConfig(_)) => 400,
            QcsError::Dist(DistError::UnsupportedGate { .. })
            | QcsError::Dist(DistError::WidthMismatch { .. }) => 400,
            _ => 500,
        }
    }
}

impl std::fmt::Display for QcsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QcsError::Sim(e) => write!(f, "{e}"),
            QcsError::Io(e) => write!(f, "{e}"),
            QcsError::Dist(e) => write!(f, "{e}"),
            QcsError::BadRequest(why) => write!(f, "bad request: {why}"),
            QcsError::NotFound(what) => write!(f, "not found: {what}"),
            QcsError::QuotaExceeded { tenant, limit } => {
                write!(f, "tenant '{tenant}' is at its quota of {limit} concurrent jobs")
            }
            QcsError::QueueFull { limit } => {
                write!(f, "admission queue is full ({limit} jobs); retry later")
            }
            QcsError::TooWide { n, max } => {
                write!(f, "{n}-qubit request exceeds this server's limit of {max}")
            }
        }
    }
}

impl std::error::Error for QcsError {}

impl From<SimError> for QcsError {
    fn from(e: SimError) -> QcsError {
        QcsError::Sim(e)
    }
}

impl From<IoError> for QcsError {
    fn from(e: IoError) -> QcsError {
        QcsError::Io(e)
    }
}

impl From<DistError> for QcsError {
    fn from(e: DistError) -> QcsError {
        QcsError::Dist(e)
    }
}

/// A circuit that does not parse is a client mistake, not an engine
/// failure.
impl From<QasmError> for QcsError {
    fn from(e: QasmError) -> QcsError {
        QcsError::BadRequest(format!("qasm: {e}"))
    }
}

/// The error JSON body every failing endpoint returns:
/// `{"error":"<code>","message":"<prose>"}`.
pub fn error_body(err: &QcsError) -> String {
    format!(
        "{{\"error\":{},\"message\":{}}}",
        crate::json::quote(err.code()),
        crate::json::quote(&err.to_string())
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_has_stable_code_and_status() {
        let cases: Vec<(QcsError, &str, u16)> = vec![
            (
                QcsError::Sim(SimError::QubitMismatch { circuit: 3, state: 4 }),
                "sim/qubit-mismatch",
                400,
            ),
            (QcsError::Sim(SimError::TraceIo("x".into())), "sim/trace-io", 500),
            (QcsError::Io(IoError::BadMagic), "io/bad-magic", 500),
            (
                QcsError::Dist(DistError::WidthMismatch { circuit: 3, state: 4 }),
                "dist/width-mismatch",
                400,
            ),
            (QcsError::BadRequest("no".into()), "serve/bad-request", 400),
            (QcsError::NotFound("job 9".into()), "serve/not-found", 404),
            (
                QcsError::QuotaExceeded { tenant: "acme".into(), limit: 4 },
                "serve/quota-exceeded",
                429,
            ),
            (QcsError::QueueFull { limit: 128 }, "serve/queue-full", 503),
            (QcsError::TooWide { n: 30, max: 20 }, "serve/too-wide", 400),
        ];
        for (err, code, status) in cases {
            assert_eq!(err.code(), code, "{err}");
            assert_eq!(err.http_status(), status, "{err}");
        }
    }

    #[test]
    fn from_conversions_compose_with_question_mark() {
        fn run() -> Result<(), QcsError> {
            Err(SimError::InvalidConfig("zero threads".into()))?
        }
        let err = run().unwrap_err();
        assert_eq!(err.code(), "sim/invalid-config");
        assert_eq!(err.http_status(), 400);
        let body = error_body(&err);
        assert!(body.starts_with("{\"error\":\"sim/invalid-config\""));
    }
}
