//! `qcs-serve`: simulation-as-a-service over the batch engine.
//!
//! A multi-tenant job server on [`std::net::TcpListener`] — hand-rolled
//! HTTP/1.1 and JSON, no new dependencies — fronting
//! [`BatchSimulator`](qcs_core::batch::BatchSimulator). Clients submit
//! circuits (JSON gate list or OpenQASM 2) with
//! `(n, strategy, shots, seed, tenant)`, get a job id back, poll it,
//! and fetch results as measurement counts and Pauli expectation
//! values — never raw `2^n` amplitude dumps. A scheduler thread packs
//! compatible submissions from *independent tenants* into one
//! gate-major batch, harvesting the amortization
//! [`perf::predict_batched`](qcs_core::perf::predict_batched) models
//! (plan once, fetch the gate stream once, touch every member state per
//! gate), with per-tenant quotas, a result cache keyed by
//! `(circuit hash, seed, shots)`, and JSONL usage accounting in the
//! unified [`Outcome`](qcs_core::outcome::Outcome) schema.
//!
//! # Endpoints
//!
//! | Endpoint | Purpose |
//! |---|---|
//! | `POST /jobs` | submit; `202` with `{"job_id":N,"status":...}` |
//! | `GET /jobs/<id>` | poll status/batching metadata |
//! | `GET /jobs/<id>/result` | fetch counts + expectations |
//! | `GET /stats` | serving counters, per-tenant usage |
//! | `GET /healthz` | liveness |
//! | `POST /shutdown` | stop accepting and drain |
//!
//! # Example
//!
//! ```
//! use qcs_serve::{client, Server, ServeConfig};
//!
//! let server = Server::start(ServeConfig::default()).unwrap();
//! let addr = server.addr();
//! let id = client::submit_job(
//!     addr,
//!     r#"{"tenant":"docs","n":2,"shots":16,"seed":1,
//!         "circuit":[{"gate":"h","q":[0]},{"gate":"cx","q":[0,1]}]}"#,
//! )
//! .unwrap();
//! assert_eq!(client::wait_for_job(addr, id).unwrap(), "done");
//! let (status, body) = client::http_request(
//!     addr, "GET", &format!("/jobs/{id}/result"), "").unwrap();
//! assert_eq!(status, 200);
//! assert!(body.contains("\"counts\""));
//! server.shutdown();
//! ```

pub mod cache;
pub mod client;
pub mod error;
pub mod http;
pub mod job;
pub mod json;
pub mod server;

pub use error::QcsError;
pub use job::JobSpec;
pub use server::{JobState, ServeConfig, Server, ServerStats, TenantUsage};
