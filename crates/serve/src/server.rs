//! The job server: accept loop, scheduler thread, endpoints.
//!
//! Lifecycle of a submission:
//!
//! 1. `POST /jobs` — parsed and validated on the connection thread
//!    ([`JobSpec::parse`]); admission control (width limit, per-tenant
//!    quota, global queue bound) and the result-cache lookup happen
//!    under the core lock. A cache hit completes the job immediately;
//!    otherwise it enters the queue and the scheduler is woken.
//! 2. The scheduler sleeps one packing window so concurrent submitters
//!    can land, then drains the queue and groups jobs by fingerprint —
//!    same width, gate stream, strategy, backend — exactly the jobs
//!    whose member states a [`BatchSimulator`](qcs_core::batch::BatchSimulator)
//!    call can carry in one
//!    gate-major batch (up to [`MAX_BATCH`] per call). This is where
//!    the `predict_batched` amortization (plan once, fetch the gate
//!    stream once, touch B member states per gate) is harvested across
//!    *independent tenants*.
//! 3. Results are rendered as counts and expectation values — never raw
//!    `2^n` amplitude dumps — cached, and (optionally) accounted per
//!    tenant as `{"type":"outcome",...}` JSONL lines.
//! 4. `GET /jobs/<id>` polls status; `GET /jobs/<id>/result` fetches
//!    the stored body (cache hits return the stored bytes unchanged, so
//!    responses are byte-identical to the first computation).

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use omp_par::ThreadPool;
use qcs_core::batch::MAX_BATCH;
use qcs_core::config::SimConfig;
use qcs_core::measure::sample_counts;
use qcs_core::outcome::Outcome;
use qcs_core::state::StateVector;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cache::ResultCache;
use crate::error::{error_body, QcsError};
use crate::http::{read_request, write_response, Request};
use crate::job::JobSpec;
use crate::json::quote;

/// Server tuning; every knob has a `QCS_SERVE_*` environment override.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Per-tenant cap on jobs queued or running at once
    /// (`QCS_SERVE_QUOTA`).
    pub quota: usize,
    /// Global admission-queue bound (`QCS_SERVE_MAX_PENDING`).
    pub max_pending: usize,
    /// Widest circuit this server admits (`QCS_SERVE_MAX_QUBITS`).
    pub max_qubits: u32,
    /// How long the scheduler waits after the first queued job for
    /// compatible jobs to pack with it (`QCS_SERVE_WINDOW_MS`).
    pub window_ms: u64,
    /// Simulation worker threads (`QCS_SERVE_THREADS`); 1 = serial.
    pub threads: usize,
    /// Result-cache entries (`QCS_SERVE_CACHE`); 0 disables caching.
    pub cache_capacity: usize,
    /// Per-tenant usage ledger, JSONL `{"type":"outcome",...}` lines
    /// (`QCS_SERVE_USAGE`); unset = no ledger.
    pub usage_path: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            quota: 64,
            max_pending: 1024,
            max_qubits: 24,
            window_ms: 5,
            threads: 1,
            cache_capacity: 1024,
            usage_path: None,
        }
    }
}

impl ServeConfig {
    /// Defaults with every `QCS_SERVE_*` environment override applied.
    pub fn from_env() -> ServeConfig {
        let mut cfg = ServeConfig::default();
        let num = |key: &str| std::env::var(key).ok().and_then(|v| v.parse::<u64>().ok());
        if let Some(v) = num("QCS_SERVE_QUOTA") {
            cfg.quota = v as usize;
        }
        if let Some(v) = num("QCS_SERVE_MAX_PENDING") {
            cfg.max_pending = v as usize;
        }
        if let Some(v) = num("QCS_SERVE_MAX_QUBITS") {
            cfg.max_qubits = v as u32;
        }
        if let Some(v) = num("QCS_SERVE_WINDOW_MS") {
            cfg.window_ms = v;
        }
        if let Some(v) = num("QCS_SERVE_THREADS") {
            cfg.threads = (v as usize).max(1);
        }
        if let Some(v) = num("QCS_SERVE_CACHE") {
            cfg.cache_capacity = v as usize;
        }
        if let Ok(path) = std::env::var("QCS_SERVE_USAGE") {
            if !path.is_empty() {
                cfg.usage_path = Some(PathBuf::from(path));
            }
        }
        cfg
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    Queued,
    Running,
    Done,
    Failed,
}

impl JobState {
    fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

struct JobRecord {
    tenant: String,
    /// Taken by the scheduler when the job starts running.
    spec: Option<JobSpec>,
    state: JobState,
    cached: bool,
    batch_id: u64,
    /// Members of the batch this job executed in (0 until it ran).
    members: u64,
    /// Amortized share of the batch wall time.
    elapsed_seconds: f64,
    result: Option<String>,
    error: Option<(&'static str, u16, String)>,
}

/// Aggregate serving counters, as reported by `GET /stats`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    pub submitted: u64,
    pub completed: u64,
    pub failed: u64,
    /// Admission rejections (quota, queue, width).
    pub rejected: u64,
    /// Batched simulator calls issued.
    pub batches: u64,
    /// Jobs that shared their batch with at least one other job.
    pub packed_jobs: u64,
    pub max_batch_members: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
}

/// Per-tenant usage accounting.
#[derive(Debug, Clone, Default)]
pub struct TenantUsage {
    /// Jobs currently queued or running (what the quota bounds).
    pub active: usize,
    pub submitted: u64,
    pub completed: u64,
    pub failed: u64,
    pub cache_hits: u64,
    pub shots: u64,
    /// Summed amortized wall seconds across this tenant's jobs.
    pub elapsed_seconds: f64,
}

struct Core {
    jobs: HashMap<u64, JobRecord>,
    queue: VecDeque<u64>,
    next_id: u64,
    cache: ResultCache,
    tenants: HashMap<String, TenantUsage>,
    stats: ServerStats,
    shutdown: bool,
}

struct Shared {
    core: Mutex<Core>,
    work: Condvar,
    cfg: ServeConfig,
    pool: Option<Arc<ThreadPool>>,
    stopping: AtomicBool,
    /// Bound address; `POST /shutdown` pokes it to unblock the accept
    /// loop.
    addr: SocketAddr,
}

/// A running job server. Dropping it shuts it down.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    sched_handle: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the accept loop and the scheduler, and return.
    pub fn start(cfg: ServeConfig) -> Result<Server, QcsError> {
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| QcsError::BadRequest(format!("cannot bind {}: {e}", cfg.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| QcsError::BadRequest(format!("no local addr: {e}")))?;
        let pool = (cfg.threads > 1).then(|| Arc::new(ThreadPool::named(cfg.threads, "serve")));
        let shared = Arc::new(Shared {
            core: Mutex::new(Core {
                jobs: HashMap::new(),
                queue: VecDeque::new(),
                next_id: 1,
                cache: ResultCache::new(cfg.cache_capacity),
                tenants: HashMap::new(),
                stats: ServerStats::default(),
                shutdown: false,
            }),
            work: Condvar::new(),
            cfg,
            pool,
            stopping: AtomicBool::new(false),
            addr,
        });

        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("serve-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn accept thread");
        let sched_shared = Arc::clone(&shared);
        let sched_handle = std::thread::Builder::new()
            .name("serve-sched".to_string())
            .spawn(move || scheduler_loop(sched_shared))
            .expect("spawn scheduler thread");

        Ok(Server {
            addr,
            shared,
            accept_handle: Some(accept_handle),
            sched_handle: Some(sched_handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the serving counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.core.lock().unwrap().stats
    }

    /// Stop accepting, finish nothing further, join the service threads.
    /// Queued jobs that have not started are abandoned.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Block until the server stops — via `POST /shutdown` or a
    /// [`Server::shutdown`] from another thread. What the CLI `serve`
    /// subcommand parks on.
    pub fn wait(mut self) {
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        {
            let mut core = self.shared.core.lock().unwrap();
            core.shutdown = true;
            self.shared.work.notify_all();
        }
        if let Some(h) = self.sched_handle.take() {
            let _ = h.join();
        }
        self.shared.stopping.store(true, Ordering::SeqCst);
    }

    fn stop(&mut self) {
        if self.shared.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        {
            let mut core = self.shared.core.lock().unwrap();
            core.shutdown = true;
            self.shared.work.notify_all();
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        if let Some(h) = self.sched_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

// ---------------------------------------------------------------------------
// Accept + connection handling
// ---------------------------------------------------------------------------

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::SeqCst) || shared.core.lock().unwrap().shutdown {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Idle keep-alive connections release their thread eventually.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        let conn_shared = Arc::clone(&shared);
        let _ = std::thread::Builder::new()
            .name("serve-conn".to_string())
            .spawn(move || handle_connection(stream, conn_shared));
    }
}

fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = std::io::BufReader::new(stream);
    loop {
        match read_request(&mut reader) {
            Ok(Some(req)) => {
                let keep_alive = req.keep_alive && !shared.stopping.load(Ordering::SeqCst);
                let (status, body) = route(&req, &shared);
                if write_response(&mut writer, status, &body, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Ok(None) => return,
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                let err = QcsError::BadRequest(e.to_string());
                let _ = write_response(&mut writer, err.http_status(), &error_body(&err), false);
                return;
            }
            Err(_) => return,
        }
    }
}

fn route(req: &Request, shared: &Arc<Shared>) -> (u16, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/jobs") => match submit(shared, &req.body) {
            Ok(body) => (202, body),
            Err(e) => (e.http_status(), error_body(&e)),
        },
        ("GET", "/healthz") => (200, "{\"ok\":true}".to_string()),
        ("GET", "/stats") => (200, stats_body(shared)),
        ("POST", "/shutdown") => {
            {
                let mut core = shared.core.lock().unwrap();
                core.shutdown = true;
                shared.work.notify_all();
            }
            shared.stopping.store(true, Ordering::SeqCst);
            // Poke the accept loop so it observes the flag.
            let _ = TcpStream::connect(shared.addr);
            (200, "{\"ok\":true}".to_string())
        }
        ("GET", path) => {
            if let Some(rest) = path.strip_prefix("/jobs/") {
                match rest.strip_suffix("/result") {
                    Some(id) => job_result(shared, id),
                    None => job_status(shared, rest),
                }
            } else {
                let e = QcsError::NotFound(path.to_string());
                (e.http_status(), error_body(&e))
            }
        }
        (_, path) => {
            let e = QcsError::NotFound(format!("{} {}", req.method, path));
            (e.http_status(), error_body(&e))
        }
    }
}

fn parse_job_id(text: &str) -> Result<u64, QcsError> {
    text.parse().map_err(|_| QcsError::NotFound(format!("job '{text}'")))
}

fn submit(shared: &Arc<Shared>, body: &str) -> Result<String, QcsError> {
    let spec = JobSpec::parse(body)?;
    let cfg = &shared.cfg;
    if spec.n > cfg.max_qubits {
        shared.core.lock().unwrap().stats.rejected += 1;
        return Err(QcsError::TooWide { n: spec.n, max: cfg.max_qubits });
    }
    // Cache key uses the *cache* fingerprint (template + concrete
    // points); batch grouping below uses the structural fingerprint.
    let key = (spec.cache_fingerprint(), spec.seed, spec.shots);
    let mut core = shared.core.lock().unwrap();
    let active = core.tenants.get(&spec.tenant).map_or(0, |t| t.active);
    if active >= cfg.quota {
        core.stats.rejected += 1;
        return Err(QcsError::QuotaExceeded { tenant: spec.tenant.clone(), limit: cfg.quota });
    }
    if core.queue.len() >= cfg.max_pending {
        core.stats.rejected += 1;
        return Err(QcsError::QueueFull { limit: cfg.max_pending });
    }
    let id = core.next_id;
    core.next_id += 1;
    core.stats.submitted += 1;
    let tenant = spec.tenant.clone();
    let shots = spec.shots;
    let usage = core.tenants.entry(tenant.clone()).or_default();
    usage.submitted += 1;

    if let Some(cached_body) = core.cache.lookup(key) {
        core.stats.cache_hits += 1;
        core.stats.completed += 1;
        let usage = core.tenants.entry(tenant.clone()).or_default();
        usage.cache_hits += 1;
        usage.completed += 1;
        usage.shots += shots;
        core.jobs.insert(
            id,
            JobRecord {
                tenant,
                spec: None,
                state: JobState::Done,
                cached: true,
                batch_id: 0,
                members: 0,
                elapsed_seconds: 0.0,
                result: Some(cached_body),
                error: None,
            },
        );
        return Ok(format!("{{\"job_id\":{id},\"status\":\"done\",\"cached\":true}}"));
    }
    core.stats.cache_misses += 1;
    let usage = core.tenants.entry(tenant.clone()).or_default();
    usage.active += 1;
    usage.shots += shots;
    core.jobs.insert(
        id,
        JobRecord {
            tenant,
            spec: Some(spec),
            state: JobState::Queued,
            cached: false,
            batch_id: 0,
            members: 0,
            elapsed_seconds: 0.0,
            result: None,
            error: None,
        },
    );
    core.queue.push_back(id);
    shared.work.notify_all();
    Ok(format!("{{\"job_id\":{id},\"status\":\"queued\",\"cached\":false}}"))
}

fn job_status(shared: &Arc<Shared>, id_text: &str) -> (u16, String) {
    let id = match parse_job_id(id_text) {
        Ok(id) => id,
        Err(e) => return (e.http_status(), error_body(&e)),
    };
    let core = shared.core.lock().unwrap();
    match core.jobs.get(&id) {
        None => {
            let e = QcsError::NotFound(format!("job {id}"));
            (e.http_status(), error_body(&e))
        }
        Some(job) => {
            let mut body = format!(
                "{{\"job_id\":{id},\"tenant\":{},\"status\":{},\"cached\":{},\
                 \"batch_id\":{},\"members\":{},\"elapsed_seconds\":{}",
                quote(&job.tenant),
                quote(job.state.label()),
                job.cached,
                job.batch_id,
                job.members,
                job.elapsed_seconds,
            );
            if let Some((code, _, msg)) = &job.error {
                body.push_str(&format!(",\"error\":{},\"message\":{}", quote(code), quote(msg)));
            }
            body.push('}');
            (200, body)
        }
    }
}

fn job_result(shared: &Arc<Shared>, id_text: &str) -> (u16, String) {
    let id = match parse_job_id(id_text) {
        Ok(id) => id,
        Err(e) => return (e.http_status(), error_body(&e)),
    };
    let core = shared.core.lock().unwrap();
    match core.jobs.get(&id) {
        None => {
            let e = QcsError::NotFound(format!("job {id}"));
            (e.http_status(), error_body(&e))
        }
        Some(job) => match (job.state, &job.result, &job.error) {
            (JobState::Done, Some(body), _) => (200, body.clone()),
            (JobState::Failed, _, Some((code, status, msg))) => {
                (*status, format!("{{\"error\":{},\"message\":{}}}", quote(code), quote(msg)))
            }
            _ => (
                409,
                format!(
                    "{{\"error\":\"serve/not-ready\",\"message\":\"job {id} is {}\"}}",
                    job.state.label()
                ),
            ),
        },
    }
}

fn stats_body(shared: &Arc<Shared>) -> String {
    let core = shared.core.lock().unwrap();
    let s = core.stats;
    let mut body = format!(
        "{{\"submitted\":{},\"completed\":{},\"failed\":{},\"rejected\":{},\
         \"batches\":{},\"packed_jobs\":{},\"max_batch_members\":{},\
         \"cache_hits\":{},\"cache_misses\":{},\"queued\":{},\"tenants\":{{",
        s.submitted,
        s.completed,
        s.failed,
        s.rejected,
        s.batches,
        s.packed_jobs,
        s.max_batch_members,
        s.cache_hits,
        s.cache_misses,
        core.queue.len(),
    );
    // BTreeMap-style determinism: render tenants in sorted order.
    let mut names: Vec<&String> = core.tenants.keys().collect();
    names.sort();
    for (i, name) in names.iter().enumerate() {
        let t = &core.tenants[*name];
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{}:{{\"active\":{},\"submitted\":{},\"completed\":{},\"failed\":{},\
             \"cache_hits\":{},\"shots\":{},\"elapsed_seconds\":{}}}",
            quote(name),
            t.active,
            t.submitted,
            t.completed,
            t.failed,
            t.cache_hits,
            t.shots,
            t.elapsed_seconds,
        ));
    }
    body.push_str("}}");
    body
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

fn scheduler_loop(shared: Arc<Shared>) {
    loop {
        // Wait for work (or shutdown).
        {
            let mut core = shared.core.lock().unwrap();
            while core.queue.is_empty() && !core.shutdown {
                core = shared.work.wait(core).unwrap();
            }
            if core.shutdown {
                return;
            }
        }
        // Packing window: let concurrent submitters land before the
        // queue is drained, so compatible jobs share a batch.
        if shared.cfg.window_ms > 0 {
            std::thread::sleep(Duration::from_millis(shared.cfg.window_ms));
        }
        // Drain and group by fingerprint.
        let mut groups: Vec<(u64, Vec<(u64, JobSpec)>)> = Vec::new();
        {
            let mut core = shared.core.lock().unwrap();
            let ids: Vec<u64> = core.queue.drain(..).collect();
            for id in ids {
                let Some(job) = core.jobs.get_mut(&id) else { continue };
                let Some(spec) = job.spec.take() else { continue };
                job.state = JobState::Running;
                let fp = spec.fingerprint();
                match groups.iter_mut().find(|(g, _)| *g == fp) {
                    Some((_, members)) => members.push((id, spec)),
                    None => groups.push((fp, vec![(id, spec)])),
                }
            }
        }
        for (fp, members) in groups {
            // A group larger than the batch engine's limit runs in
            // MAX_BATCH-sized waves.
            let mut members = members;
            while !members.is_empty() {
                let rest = members.split_off(members.len().min(MAX_BATCH));
                run_group(&shared, fp, members);
                members = rest;
            }
        }
    }
}

/// Execute one fingerprint-group as a single gate-major batch and
/// complete every member job.
fn run_group(shared: &Arc<Shared>, fingerprint: u64, members: Vec<(u64, JobSpec)>) {
    if members[0].1.is_sweep() {
        return run_sweep_group(shared, members);
    }
    let spec0 = &members[0].1;
    let mut cfg =
        SimConfig::default().strategy(spec0.strategy).backend(spec0.backend).batch(members.len());
    if let Some(pool) = &shared.pool {
        cfg = cfg.pool(Arc::clone(pool));
    }
    let outcome = match qcs_core::batch::BatchSimulator::from_config(cfg)
        .and_then(|batch| batch.run_fresh(&spec0.circuit))
    {
        Ok((states, report)) => {
            let mut core = shared.core.lock().unwrap();
            core.stats.batches += 1;
            core.stats.max_batch_members = core.stats.max_batch_members.max(report.members as u64);
            if report.members >= 2 {
                core.stats.packed_jobs += report.members as u64;
            }
            let share = report.wall_seconds / report.members.max(1) as f64;
            for ((id, spec), state) in members.iter().zip(&states) {
                let body = render_result(spec, state, &report);
                core.cache.insert((fingerprint, spec.seed, spec.shots), body.clone());
                core.stats.completed += 1;
                let usage = core.tenants.entry(spec.tenant.clone()).or_default();
                usage.active = usage.active.saturating_sub(1);
                usage.completed += 1;
                usage.elapsed_seconds += share;
                if let Some(job) = core.jobs.get_mut(id) {
                    job.state = JobState::Done;
                    job.batch_id = report.batch_id;
                    job.members = report.members as u64;
                    job.elapsed_seconds = share;
                    job.result = Some(body);
                }
            }
            let outcome = Outcome::from(&report).with_config(
                &spec0.strategy_str,
                shared.pool.as_ref().map_or(1, |p| p.num_threads() as u32),
                spec0.n,
            );
            Some(outcome)
        }
        Err(e) => {
            let err = QcsError::from(e);
            let (code, status, msg) = (err.code(), err.http_status(), err.to_string());
            let mut core = shared.core.lock().unwrap();
            for (id, spec) in &members {
                core.stats.failed += 1;
                let usage = core.tenants.entry(spec.tenant.clone()).or_default();
                usage.active = usage.active.saturating_sub(1);
                usage.failed += 1;
                if let Some(job) = core.jobs.get_mut(id) {
                    job.state = JobState::Failed;
                    job.error = Some((code, status, msg.clone()));
                }
            }
            None
        }
    };
    // Usage ledger, outside the lock: one line per member job.
    if let (Some(path), Some(outcome)) = (&shared.cfg.usage_path, outcome) {
        for (id, spec) in &members {
            let line = outcome.clone().with_label(format!("tenant={};job={}", spec.tenant, id));
            let _ = qcs_core::telemetry::sink::append_outcome(path, &line);
        }
    }
}

/// Execute one sweep-fingerprint group. Every member job's points are
/// flattened into one circuit list — the templates are structurally
/// identical (that is what the fingerprint hashes), so the bound
/// circuits are same-shaped and [`run_sweep`] carries them gate-major
/// in `MAX_BATCH`-sized waves: the cross-tenant packing win, per
/// *point* rather than per job.
///
/// [`run_sweep`]: qcs_core::batch::BatchSimulator::run_sweep
fn run_sweep_group(shared: &Arc<Shared>, members: Vec<(u64, JobSpec)>) {
    let spec0 = &members[0].1;
    let mut cfg = SimConfig::default().strategy(spec0.strategy).backend(spec0.backend);
    if let Some(pool) = &shared.pool {
        cfg = cfg.pool(Arc::clone(pool));
    }
    let circuits: Vec<_> = members
        .iter()
        .flat_map(|(_, spec)| {
            let template = spec.ansatz.as_ref().expect("sweep group member has a template");
            spec.points.iter().map(move |p| template.bind(p))
        })
        .collect();
    let result = qcs_core::batch::BatchSimulator::from_config(cfg).and_then(|engine| {
        let mut states: Vec<StateVector> = Vec::with_capacity(circuits.len());
        let mut wall = 0.0;
        let mut batch_id = 0;
        let mut backend = "";
        let mut waves = 0u64;
        let mut max_members = 0usize;
        for chunk in circuits.chunks(MAX_BATCH) {
            let mut wave: Vec<StateVector> =
                chunk.iter().map(|c| StateVector::zero(c.n_qubits())).collect();
            let report = engine.run_sweep(chunk, &mut wave)?;
            wall += report.wall_seconds;
            batch_id = report.batch_id;
            backend = report.backend;
            waves += 1;
            max_members = max_members.max(report.members);
            states.extend(wave);
        }
        Ok((states, wall, batch_id, backend, waves, max_members))
    });
    match result {
        Ok((states, wall, batch_id, backend, waves, max_members)) => {
            let total_points = states.len().max(1);
            let mut core = shared.core.lock().unwrap();
            core.stats.batches += waves;
            core.stats.max_batch_members = core.stats.max_batch_members.max(max_members as u64);
            if members.len() >= 2 {
                core.stats.packed_jobs += members.len() as u64;
            }
            let mut offset = 0usize;
            for (id, spec) in &members {
                let mine = &states[offset..offset + spec.points.len()];
                offset += spec.points.len();
                let body = render_sweep_result(spec, mine, backend);
                core.cache.insert((spec.cache_fingerprint(), spec.seed, spec.shots), body.clone());
                core.stats.completed += 1;
                let share = wall * spec.points.len() as f64 / total_points as f64;
                let usage = core.tenants.entry(spec.tenant.clone()).or_default();
                usage.active = usage.active.saturating_sub(1);
                usage.completed += 1;
                usage.elapsed_seconds += share;
                if let Some(job) = core.jobs.get_mut(id) {
                    job.state = JobState::Done;
                    job.batch_id = batch_id;
                    job.members = total_points as u64;
                    job.elapsed_seconds = share;
                    job.result = Some(body);
                }
            }
        }
        Err(e) => {
            let err = QcsError::from(e);
            let (code, status, msg) = (err.code(), err.http_status(), err.to_string());
            let mut core = shared.core.lock().unwrap();
            for (id, spec) in &members {
                core.stats.failed += 1;
                let usage = core.tenants.entry(spec.tenant.clone()).or_default();
                usage.active = usage.active.saturating_sub(1);
                usage.failed += 1;
                if let Some(job) = core.jobs.get_mut(id) {
                    job.state = JobState::Failed;
                    job.error = Some((code, status, msg.clone()));
                }
            }
        }
    }
}

/// The public sweep-result body: one entry per point, counts sampled
/// with `seed + point_index`, expectations per observable. Like
/// [`render_result`], a pure function of the work, so cache hits serve
/// these exact bytes again.
fn render_sweep_result(spec: &JobSpec, states: &[StateVector], backend: &str) -> String {
    let mut body = format!(
        "{{\"type\":\"sweep_result\",\"n_qubits\":{},\"points\":{},\"shots\":{},\"seed\":{},\
         \"strategy\":{},\"backend\":{},\"template_fnv1a\":{},\"gates\":{},\"results\":[",
        spec.n,
        states.len(),
        spec.shots,
        spec.seed,
        quote(&spec.strategy_str),
        quote(backend),
        quote(&format!("{:016x}", spec.fingerprint())),
        spec.circuit.len(),
    );
    for (i, state) in states.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        let mut rng = StdRng::seed_from_u64(spec.seed.wrapping_add(i as u64));
        let counts = sample_counts(state, spec.shots as usize, &mut rng);
        body.push_str(&format!("{{\"point\":{i},\"counts\":["));
        for (k, (index, count)) in counts.iter().enumerate() {
            if k > 0 {
                body.push(',');
            }
            body.push_str(&format!("[{index},{count}]"));
        }
        body.push_str("],\"expectations\":[");
        for (k, (source, op)) in spec.observables.iter().enumerate() {
            if k > 0 {
                body.push(',');
            }
            body.push_str(&format!(
                "{{\"observable\":{},\"value\":{}}}",
                quote(source),
                op.expectation(state)
            ));
        }
        body.push_str("]}");
    }
    body.push_str("]}");
    body
}

/// Render the public result body. Deliberately excludes job id, timing,
/// and cache status — everything here is a pure function of the work,
/// so a cache hit serves these exact bytes again.
fn render_result(
    spec: &JobSpec,
    state: &StateVector,
    report: &qcs_core::batch::BatchReport,
) -> String {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let counts = sample_counts(state, spec.shots as usize, &mut rng);
    let mut body = format!(
        "{{\"type\":\"result\",\"n_qubits\":{},\"shots\":{},\"seed\":{},\
         \"strategy\":{},\"backend\":{},\"circuit_fnv1a\":{},\"gates\":{},\
         \"sweeps\":{},\"counts\":[",
        spec.n,
        spec.shots,
        spec.seed,
        quote(&spec.strategy_str),
        quote(report.backend),
        quote(&format!("{:016x}", spec.fingerprint())),
        report.gates,
        report.sweeps,
    );
    for (i, (index, count)) in counts.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!("[{index},{count}]"));
    }
    body.push_str("],\"expectations\":[");
    for (i, (source, op)) in spec.observables.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"observable\":{},\"value\":{}}}",
            quote(source),
            op.expectation(state)
        ));
    }
    body.push_str("]}");
    body
}
