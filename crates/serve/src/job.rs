//! Job submissions: parsing, validation, and fingerprinting.
//!
//! A submission is a JSON object:
//!
//! ```json
//! {
//!   "tenant": "acme",
//!   "n": 12,
//!   "shots": 1000,
//!   "seed": 7,
//!   "strategy": "fused:4",
//!   "backend": "auto",
//!   "circuit": [{"gate":"h","q":[0]}, {"gate":"cx","q":[0,1]}],
//!   "observables": ["Z0 Z1", "X0"]
//! }
//! ```
//!
//! `circuit` is a gate list in the [`Circuit`] builder vocabulary;
//! alternatively `"qasm"` carries an OpenQASM 2 program for the
//! existing parser. Everything is validated here, *before* a job
//! reaches the queue — [`Circuit::push`] asserts on bad qubit indices,
//! and a panic in the scheduler would take the worker down, so the
//! worker must only ever see well-formed circuits.
//!
//! # Parameter sweeps
//!
//! Rotation gates may carry `"param": <slot>` instead of a concrete
//! `"theta"`, turning the submission into a *sweep*: a top-level
//! `"points"` array then lists the parameter vectors to evaluate, and
//! the result reports counts/expectations per point. The
//! [`fingerprint`](JobSpec::fingerprint) covers the *structure* (slots,
//! not values), so sweeps over the same template — different points,
//! different tenants — pack into one gate-major batch; the concrete
//! points only enter the result-cache key
//! ([`cache_fingerprint`](JobSpec::cache_fingerprint)).

use std::str::FromStr;

use qcs_core::circuit::{Circuit, Gate};
use qcs_core::expectation::{Pauli, PauliString};
use qcs_core::io::{fnv1a, fnv1a_update};
use qcs_core::kernels::simd::BackendChoice;
use qcs_core::sim::Strategy;
use qcs_core::variational::ParamCircuit;

use crate::error::QcsError;
use crate::json::Value;

/// A validated job, ready for the scheduler.
#[derive(Debug, Clone)]
pub struct JobSpec {
    pub tenant: String,
    pub n: u32,
    pub shots: u64,
    pub seed: u64,
    pub strategy: Strategy,
    pub backend: BackendChoice,
    /// Canonical strategy string (via `Display` — round-trips `FromStr`).
    pub strategy_str: String,
    /// Canonical backend string (`auto` / `scalar` / `simd`).
    pub backend_str: String,
    pub circuit: Circuit,
    /// `(source text, parsed operator)` pairs; the source text is echoed
    /// back in the result body.
    pub observables: Vec<(String, PauliString)>,
    /// The parameterized template, when any gate carried `"param"`.
    /// `circuit` then holds the template bound at `points[0]`.
    pub ansatz: Option<ParamCircuit>,
    /// Parameter points to evaluate (empty for plain jobs).
    pub points: Vec<Vec<f64>>,
}

fn bad(why: impl Into<String>) -> QcsError {
    QcsError::BadRequest(why.into())
}

impl JobSpec {
    /// Parse and validate one submission body.
    pub fn parse(body: &str) -> Result<JobSpec, QcsError> {
        let v = crate::json::parse(body).map_err(|e| bad(format!("invalid JSON: {e}")))?;
        if !matches!(v, Value::Obj(_)) {
            return Err(bad("submission must be a JSON object"));
        }
        let tenant = v
            .get("tenant")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("missing string field 'tenant'"))?
            .to_string();
        if tenant.is_empty() || tenant.len() > 64 {
            return Err(bad("'tenant' must be 1..=64 characters"));
        }
        let shots = match v.get("shots") {
            None => 0,
            Some(s) => s.as_u64().ok_or_else(|| bad("'shots' must be a non-negative integer"))?,
        };
        if shots > 10_000_000 {
            return Err(bad("'shots' exceeds the 10M limit"));
        }
        let seed = match v.get("seed") {
            None => 0,
            Some(s) => s.as_u64().ok_or_else(|| bad("'seed' must be a non-negative integer"))?,
        };
        let strategy_text = v.get("strategy").and_then(Value::as_str).unwrap_or("auto");
        let strategy = Strategy::from_str(strategy_text).map_err(bad)?;
        let strategy_str = strategy.to_string();
        let backend_text = v.get("backend").and_then(Value::as_str).unwrap_or("auto");
        let backend = BackendChoice::from_str(backend_text).map_err(bad)?;
        let backend_str = match backend {
            BackendChoice::Auto => "auto",
            BackendChoice::Scalar => "scalar",
            BackendChoice::Simd => "simd",
        }
        .to_string();

        let (circuit, ansatz, points) = match (v.get("circuit"), v.get("qasm")) {
            (Some(_), Some(_)) => {
                return Err(bad("give either 'circuit' or 'qasm', not both"));
            }
            (Some(list), None) => {
                let n = v
                    .get("n")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| bad("missing integer field 'n'"))?;
                if n == 0 || n > 30 {
                    return Err(bad("'n' must be in 1..=30"));
                }
                let (template, saw_param) = parse_gate_list(n as u32, list)?;
                if saw_param {
                    let points = parse_points(&v, template.n_params())?;
                    let circuit = template.bind(&points[0]);
                    (circuit, Some(template), points)
                } else {
                    if v.get("points").is_some() {
                        return Err(bad(
                            "'points' needs parameterized gates ('param' slots) to bind",
                        ));
                    }
                    (template.bind(&[]), None, Vec::new())
                }
            }
            (None, Some(src)) => {
                if v.get("points").is_some() {
                    return Err(bad(
                        "'points' sweeps use the 'circuit' gate-list form, not 'qasm'",
                    ));
                }
                let src = src.as_str().ok_or_else(|| bad("'qasm' must be a string"))?;
                // The qasm front-end range-checks indices but relies on
                // `Circuit::push` asserts for duplicate qubits; a panic
                // here must stay a 400, not kill the connection thread.
                let c = std::panic::catch_unwind(|| qcs_core::qasm::parse(src))
                    .map_err(|_| bad("qasm: invalid gate operands"))??;
                if let Some(n) = v.get("n").and_then(Value::as_u64) {
                    if n as u32 != c.n_qubits() {
                        return Err(bad(format!(
                            "'n' is {n} but the qasm program declares {}",
                            c.n_qubits()
                        )));
                    }
                }
                (strip_terminal_measurements(c)?, None, Vec::new())
            }
            (None, None) => return Err(bad("missing 'circuit' (gate list) or 'qasm'")),
        };
        let n = circuit.n_qubits();

        let mut observables = Vec::new();
        if let Some(list) = v.get("observables") {
            let list = list.as_arr().ok_or_else(|| bad("'observables' must be an array"))?;
            if list.len() > 64 {
                return Err(bad("at most 64 observables per job"));
            }
            for o in list {
                let text = o.as_str().ok_or_else(|| bad("observables are strings"))?;
                observables.push((text.to_string(), parse_pauli(text, n)?));
            }
        }

        Ok(JobSpec {
            tenant,
            n,
            shots,
            seed,
            strategy,
            backend,
            strategy_str,
            backend_str,
            circuit,
            observables,
            ansatz,
            points,
        })
    }

    /// Whether this job sweeps a parameterized template over points.
    pub fn is_sweep(&self) -> bool {
        self.ansatz.is_some()
    }

    /// FNV-1a fingerprint of everything that determines the *work* and
    /// its exact numerical result: width, gate sequence, strategy, and
    /// backend (different strategies agree only to rounding, so they
    /// must never share cache entries), plus the observable list (it
    /// shapes the result body). Jobs with equal fingerprints are
    /// batch-compatible; for sweeps the *template structure* (slots,
    /// fixed gates) is hashed — not the concrete points — so sweeps
    /// over the same template pack into one gate-major batch across
    /// tenants. `(cache_fingerprint, seed, shots)` keys the cache.
    pub fn fingerprint(&self) -> u64 {
        let mut text =
            format!("n={};strategy={};backend={};", self.n, self.strategy_str, self.backend_str);
        match &self.ansatz {
            Some(template) => {
                text.push_str("template;");
                for op in template.ops() {
                    text.push_str(&format!("{op:?};"));
                }
            }
            None => {
                for g in self.circuit.gates() {
                    text.push_str(&format!("{g:?};"));
                }
            }
        }
        let mut h = fnv1a(text.as_bytes());
        for (src, _) in &self.observables {
            h = fnv1a_update(h, b"obs=");
            h = fnv1a_update(h, src.as_bytes());
            h = fnv1a_update(h, b";");
        }
        h
    }

    /// The result-cache key: the batch [`fingerprint`](JobSpec::fingerprint)
    /// plus the concrete parameter points — two sweeps over the same
    /// template share a batch but must never share cached results.
    pub fn cache_fingerprint(&self) -> u64 {
        let mut h = self.fingerprint();
        for point in &self.points {
            h = fnv1a_update(h, b"pt=");
            for val in point {
                h = fnv1a_update(h, &val.to_bits().to_le_bytes());
            }
            h = fnv1a_update(h, b";");
        }
        h
    }
}

/// A qasm program's trailing measurement layer is implied by `shots`
/// and dropped; anything *mid-circuit* (a measurement feeding later
/// gates, or any classically-controlled gate) cannot run under the
/// batch engine and is a clean 400.
fn strip_terminal_measurements(c: Circuit) -> Result<Circuit, QcsError> {
    if !c.has_nonunitary() {
        return Ok(c);
    }
    let gates = c.gates();
    let cut = gates.iter().rposition(|g| g.is_unitary()).map_or(0, |i| i + 1);
    for g in &gates[..cut] {
        if !g.is_unitary() {
            return Err(bad(
                "qasm: mid-circuit measurement / classical control is not supported by the \
                 job server; only a terminal measurement layer (implied by 'shots') is",
            ));
        }
    }
    if gates[cut..].iter().any(|g| !matches!(g, Gate::Measure { .. })) {
        return Err(bad("qasm: classically-controlled gates are not supported by the job server"));
    }
    let mut out = Circuit::new(c.n_qubits());
    for g in &gates[..cut] {
        out.push(g.clone());
    }
    Ok(out)
}

/// The `"points"` array of a sweep submission: 1..=256 parameter
/// vectors, each exactly `n_params` finite numbers long.
fn parse_points(v: &Value, n_params: usize) -> Result<Vec<Vec<f64>>, QcsError> {
    let list = v
        .get("points")
        .ok_or_else(|| bad("parameterized gates need a 'points' array of parameter vectors"))?;
    let list =
        list.as_arr().ok_or_else(|| bad("'points' must be an array of parameter vectors"))?;
    if list.is_empty() {
        return Err(bad("'points' must list at least one parameter vector"));
    }
    if list.len() > 256 {
        return Err(bad("at most 256 points per sweep job"));
    }
    let mut out = Vec::with_capacity(list.len());
    for (i, p) in list.iter().enumerate() {
        let arr =
            p.as_arr().ok_or_else(|| bad(format!("points[{i}] must be an array of numbers")))?;
        if arr.len() != n_params {
            return Err(bad(format!(
                "points[{i}] has {} values; the template has {n_params} parameter slot(s)",
                arr.len()
            )));
        }
        let vals: Vec<f64> = arr
            .iter()
            .map(Value::as_f64)
            .collect::<Option<_>>()
            .ok_or_else(|| bad(format!("points[{i}] entries must be numbers")))?;
        if vals.iter().any(|x| !x.is_finite()) {
            return Err(bad(format!("points[{i}] contains a non-finite value")));
        }
        out.push(vals);
    }
    Ok(out)
}

/// Gate-list vocabulary: the [`Circuit`] fluent-builder names, each with
/// its qubit arity and angle parameters. Returns the circuit as a
/// [`ParamCircuit`] template (binding a 0-parameter template yields the
/// plain circuit) plus whether any gate carried a `"param"` slot.
fn parse_gate_list(n: u32, list: &Value) -> Result<(ParamCircuit, bool), QcsError> {
    let list = list.as_arr().ok_or_else(|| bad("'circuit' must be an array"))?;
    if list.len() > 100_000 {
        return Err(bad("circuit exceeds the 100k-gate limit"));
    }
    let mut template = ParamCircuit::new(n);
    let mut saw_param = false;
    for (i, item) in list.iter().enumerate() {
        let at = |e: QcsError| match e {
            QcsError::BadRequest(why) => bad(format!("circuit[{i}]: {why}")),
            other => other,
        };
        if item.get("param").is_some() {
            saw_param = true;
            push_param_gate(&mut template, item).map_err(at)?;
            continue;
        }
        let gate = build_gate(item).map_err(at)?;
        // Validate before `fixed`, which asserts (and would panic).
        let qs = gate.qubits();
        for &q in &qs {
            if q >= n {
                return Err(bad(format!(
                    "circuit[{i}]: qubit {q} out of range for a {n}-qubit circuit"
                )));
            }
        }
        for (a, &qa) in qs.iter().enumerate() {
            if qs[a + 1..].contains(&qa) {
                return Err(bad(format!("circuit[{i}]: qubit {qa} used twice")));
            }
        }
        template.fixed(gate);
    }
    Ok((template, saw_param))
}

/// One `"param"`-carrying rotation: slot `p` may re-use any slot the
/// template already has, or be exactly the next fresh one — the same
/// allocate-in-order discipline the [`ParamCircuit`] builder asserts,
/// surfaced here as a 400.
fn push_param_gate(template: &mut ParamCircuit, item: &Value) -> Result<(), QcsError> {
    let name = item
        .get("gate")
        .and_then(Value::as_str)
        .ok_or_else(|| bad("missing string field 'gate'"))?;
    if item.get("theta").is_some() {
        return Err(bad(format!("gate '{name}': give 'param' or 'theta', not both")));
    }
    let slot = item
        .get("param")
        .and_then(Value::as_u64)
        .ok_or_else(|| bad("'param' must be a non-negative integer slot"))? as usize;
    let qs: Vec<u32> = match item.get("q").and_then(Value::as_arr) {
        Some(arr) => arr
            .iter()
            .map(|q| q.as_u64().map(|q| q as u32))
            .collect::<Option<_>>()
            .ok_or_else(|| bad("'q' entries must be non-negative integers"))?,
        None => return Err(bad("missing array field 'q'")),
    };
    let n = template.n_qubits();
    for &q in &qs {
        if q >= n {
            return Err(bad(format!("qubit {q} out of range for a {n}-qubit circuit")));
        }
    }
    if qs.len() == 2 && qs[0] == qs[1] {
        return Err(bad(format!("gate '{name}': qubit {} used twice", qs[0])));
    }
    if slot > template.n_params() {
        return Err(bad(format!(
            "gate '{name}': parameter slot {slot} introduced out of order \
             ({} allocated so far; slots are dense, in first-use order)",
            template.n_params()
        )));
    }
    let fresh = slot == template.n_params();
    match (name, qs.len()) {
        ("rx", 1) => {
            if fresh {
                template.rx(qs[0]);
            } else {
                template.rx_param(qs[0], slot);
            }
        }
        ("ry", 1) => {
            if fresh {
                template.ry(qs[0]);
            } else {
                template.ry_param(qs[0], slot);
            }
        }
        ("rz", 1) => {
            if fresh {
                template.rz(qs[0]);
            } else {
                template.rz_param(qs[0], slot);
            }
        }
        ("rzz", 2) => {
            if fresh {
                template.rzz(qs[0], qs[1]);
            } else {
                template.rzz_param(qs[0], qs[1], slot);
            }
        }
        ("rxx", 2) => {
            if fresh {
                template.rxx(qs[0], qs[1]);
            } else {
                template.rxx_param(qs[0], qs[1], slot);
            }
        }
        _ => {
            return Err(bad(format!(
                "gate '{name}' with {} qubit(s) cannot take 'param' \
                 (parameterized gates: rx/ry/rz on 1 qubit, rzz/rxx on 2)",
                qs.len()
            )))
        }
    }
    Ok(())
}

fn build_gate(item: &Value) -> Result<Gate, QcsError> {
    let name = item
        .get("gate")
        .and_then(Value::as_str)
        .ok_or_else(|| bad("missing string field 'gate'"))?;
    let qs: Vec<u32> = match item.get("q").and_then(Value::as_arr) {
        Some(arr) => arr
            .iter()
            .map(|q| q.as_u64().map(|q| q as u32))
            .collect::<Option<_>>()
            .ok_or_else(|| bad("'q' entries must be non-negative integers"))?,
        None => return Err(bad("missing array field 'q'")),
    };
    let q = |i: usize| -> Result<u32, QcsError> {
        qs.get(i).copied().ok_or_else(|| bad(format!("gate '{name}' needs more qubits")))
    };
    let angle = |field: &str| -> Result<f64, QcsError> {
        item.get(field)
            .and_then(Value::as_f64)
            .ok_or_else(|| bad(format!("gate '{name}' needs number field '{field}'")))
    };
    let arity = |want: usize| -> Result<(), QcsError> {
        if qs.len() == want {
            Ok(())
        } else {
            Err(bad(format!("gate '{name}' takes {want} qubit(s), got {}", qs.len())))
        }
    };
    let gate = match name {
        "h" => Gate::H(q(0)?),
        "x" => Gate::X(q(0)?),
        "y" => Gate::Y(q(0)?),
        "z" => Gate::Z(q(0)?),
        "s" => Gate::S(q(0)?),
        "sdg" => Gate::Sdg(q(0)?),
        "t" => Gate::T(q(0)?),
        "tdg" => Gate::Tdg(q(0)?),
        "sx" => Gate::Sx(q(0)?),
        "rx" => Gate::Rx(q(0)?, angle("theta")?),
        "ry" => Gate::Ry(q(0)?, angle("theta")?),
        "rz" => Gate::Rz(q(0)?, angle("theta")?),
        "p" => Gate::Phase(q(0)?, angle("theta")?),
        "u3" => Gate::U3(q(0)?, angle("theta")?, angle("phi")?, angle("lambda")?),
        "cx" => Gate::Cx(q(0)?, q(1)?),
        "cy" => Gate::Cy(q(0)?, q(1)?),
        "cz" => Gate::Cz(q(0)?, q(1)?),
        "cp" => Gate::CPhase(q(0)?, q(1)?, angle("theta")?),
        "swap" => Gate::Swap(q(0)?, q(1)?),
        "iswap" => Gate::ISwap(q(0)?, q(1)?),
        "rzz" => Gate::Rzz(q(0)?, q(1)?, angle("theta")?),
        "rxx" => Gate::Rxx(q(0)?, q(1)?, angle("theta")?),
        "ccx" => Gate::Ccx(q(0)?, q(1)?, q(2)?),
        "cswap" => Gate::CSwap(q(0)?, q(1)?, q(2)?),
        other => return Err(bad(format!("unknown gate '{other}'"))),
    };
    let want = gate.qubits().len();
    arity(want)?;
    Ok(gate)
}

/// Parse `"Z0 Z1"`-style Pauli strings: whitespace-separated terms, each
/// one of `X`/`Y`/`Z` followed by a qubit index.
fn parse_pauli(text: &str, n: u32) -> Result<PauliString, QcsError> {
    let mut ops = Vec::new();
    for term in text.split_whitespace() {
        let (p, idx) = term.split_at(1);
        let p = match p {
            "X" | "x" => Pauli::X,
            "Y" | "y" => Pauli::Y,
            "Z" | "z" => Pauli::Z,
            _ => return Err(bad(format!("observable term '{term}': expected X/Y/Z"))),
        };
        let q: u32 =
            idx.parse().map_err(|_| bad(format!("observable term '{term}': bad qubit index")))?;
        if q >= n {
            return Err(bad(format!("observable qubit {q} out of range (n={n})")));
        }
        if ops.iter().any(|&(oq, _)| oq == q) {
            return Err(bad(format!("observable '{text}' uses qubit {q} twice")));
        }
        ops.push((q, p));
    }
    if ops.is_empty() {
        return Err(bad("empty observable"));
    }
    Ok(PauliString::new(ops))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submission(extra: &str) -> String {
        format!(
            r#"{{"tenant":"acme","n":3,"shots":64,"seed":9,"strategy":"fused:2",
                "backend":"scalar",
                "circuit":[{{"gate":"h","q":[0]}},{{"gate":"cx","q":[0,1]}},
                           {{"gate":"rx","q":[2],"theta":0.25}}]{extra}}}"#
        )
    }

    #[test]
    fn well_formed_submission_parses() {
        let spec = JobSpec::parse(&submission(",\"observables\":[\"Z0 Z1\",\"X2\"]")).unwrap();
        assert_eq!(spec.tenant, "acme");
        assert_eq!(spec.n, 3);
        assert_eq!(spec.circuit.len(), 3);
        assert_eq!(spec.strategy_str, "fused:2");
        assert_eq!(spec.backend_str, "scalar");
        assert_eq!(spec.observables.len(), 2);
    }

    #[test]
    fn qasm_submission_parses() {
        let spec = JobSpec::parse(
            r#"{"tenant":"t","qasm":"OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n"}"#,
        )
        .unwrap();
        assert_eq!(spec.n, 2);
        assert_eq!(spec.circuit.len(), 2);
    }

    #[test]
    fn bad_submissions_are_rejected_not_panicked() {
        let cases = [
            "not json".to_string(),
            "{}".to_string(),
            r#"{"tenant":"t","n":3,"circuit":[{"gate":"zap","q":[0]}]}"#.to_string(),
            r#"{"tenant":"t","n":3,"circuit":[{"gate":"h","q":[5]}]}"#.to_string(),
            r#"{"tenant":"t","n":3,"circuit":[{"gate":"cx","q":[1,1]}]}"#.to_string(),
            r#"{"tenant":"t","n":3,"circuit":[{"gate":"rx","q":[0]}]}"#.to_string(),
            r#"{"tenant":"t","n":3,"circuit":[{"gate":"h","q":[0,1]}]}"#.to_string(),
            r#"{"tenant":"t","n":0,"circuit":[]}"#.to_string(),
            r#"{"tenant":"t","n":3,"strategy":"warp","circuit":[]}"#.to_string(),
            submission(",\"observables\":[\"Q0\"]"),
            submission(",\"observables\":[\"Z0 Z0\"]"),
            submission(",\"observables\":[\"Z9\"]"),
        ];
        for body in &cases {
            let err = JobSpec::parse(body).unwrap_err();
            assert_eq!(err.code(), "serve/bad-request", "{body}");
        }
    }

    #[test]
    fn qasm_terminal_measurements_are_stripped() {
        let spec = JobSpec::parse(
            r#"{"tenant":"t","qasm":"OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0],q[1];\nmeasure q[0] -> c[0];\nmeasure q[1] -> c[1];\n"}"#,
        )
        .unwrap();
        assert_eq!(spec.circuit.len(), 2, "the terminal measure layer is implied by shots");
        assert!(!spec.circuit.has_nonunitary());
    }

    #[test]
    fn qasm_mid_circuit_measurement_is_a_clean_400() {
        let mid = JobSpec::parse(
            r#"{"tenant":"t","qasm":"OPENQASM 2.0;\nqreg q[2];\ncreg c[1];\nh q[0];\nmeasure q[0] -> c[0];\nx q[1];\n"}"#,
        )
        .unwrap_err();
        assert_eq!(mid.code(), "serve/bad-request");
        let cif = JobSpec::parse(
            r#"{"tenant":"t","qasm":"OPENQASM 2.0;\nqreg q[2];\ncreg c[1];\nh q[0];\nmeasure q[0] -> c[0];\nif(c==1) x q[1];\n"}"#,
        )
        .unwrap_err();
        assert_eq!(cif.code(), "serve/bad-request");
    }

    fn sweep_submission(points: &str) -> String {
        format!(
            r#"{{"tenant":"acme","n":2,"seed":3,"backend":"scalar",
                "circuit":[{{"gate":"ry","q":[0],"param":0}},
                           {{"gate":"cz","q":[0,1]}},
                           {{"gate":"ry","q":[1],"param":1}}],
                "points":{points},
                "observables":["Z0 Z1"]}}"#
        )
    }

    #[test]
    fn sweep_submission_parses() {
        let spec = JobSpec::parse(&sweep_submission("[[0.1,0.2],[0.3,0.4]]")).unwrap();
        assert!(spec.is_sweep());
        assert_eq!(spec.points.len(), 2);
        assert_eq!(spec.ansatz.as_ref().unwrap().n_params(), 2);
        // `circuit` is the template bound at points[0].
        assert_eq!(spec.circuit.len(), 3);
    }

    #[test]
    fn sweep_fingerprint_covers_structure_not_points() {
        let a = JobSpec::parse(&sweep_submission("[[0.1,0.2]]")).unwrap();
        let b = JobSpec::parse(&sweep_submission("[[0.5,0.6],[0.7,0.8]]")).unwrap();
        // Same template ⇒ same batch fingerprint: the jobs pack.
        assert_eq!(a.fingerprint(), b.fingerprint());
        // …but never share cache entries.
        assert_ne!(a.cache_fingerprint(), b.cache_fingerprint());
        // A plain job never collides with a sweep job's cache key.
        let plain = JobSpec::parse(&submission("")).unwrap();
        assert_eq!(plain.fingerprint(), plain.cache_fingerprint());
    }

    #[test]
    fn bad_sweep_submissions_are_rejected() {
        let cases = [
            // wrong point arity
            sweep_submission("[[0.1]]"),
            // empty and missing points
            sweep_submission("[]"),
            sweep_submission("null"),
            // non-finite value
            sweep_submission("[[0.1,\"nan\"]]"),
            // points without params
            submission(",\"points\":[[0.1]]"),
            // param slot out of order
            r#"{"tenant":"t","n":1,"circuit":[{"gate":"rx","q":[0],"param":1}],"points":[[0.1]]}"#
                .to_string(),
            // param on a non-rotation gate
            r#"{"tenant":"t","n":1,"circuit":[{"gate":"h","q":[0],"param":0}],"points":[[0.1]]}"#
                .to_string(),
            // both param and theta
            r#"{"tenant":"t","n":1,"circuit":[{"gate":"rx","q":[0],"param":0,"theta":0.5}],"points":[[0.1]]}"#
                .to_string(),
        ];
        for body in &cases {
            let err = JobSpec::parse(body).unwrap_err();
            assert_eq!(err.code(), "serve/bad-request", "{body}");
        }
    }

    #[test]
    fn shared_param_slot_drives_several_gates() {
        let spec = JobSpec::parse(
            r#"{"tenant":"t","n":2,
                "circuit":[{"gate":"rx","q":[0],"param":0},
                           {"gate":"rx","q":[1],"param":0}],
                "points":[[1.5]]}"#,
        )
        .unwrap();
        assert_eq!(spec.ansatz.as_ref().unwrap().n_params(), 1);
        assert_eq!(spec.circuit.len(), 2);
    }

    #[test]
    fn fingerprint_separates_work_that_differs() {
        let base = JobSpec::parse(&submission("")).unwrap();
        let same = JobSpec::parse(&submission("")).unwrap();
        assert_eq!(base.fingerprint(), same.fingerprint());
        // seed/shots do NOT enter the fingerprint (they share a batch)…
        let reseeded =
            JobSpec::parse(&submission("").replace("\"seed\":9", "\"seed\":10")).unwrap();
        assert_eq!(base.fingerprint(), reseeded.fingerprint());
        // …but strategy, backend, gates, and observables all do.
        let other_strategy = JobSpec::parse(&submission("").replace("fused:2", "naive")).unwrap();
        assert_ne!(base.fingerprint(), other_strategy.fingerprint());
        let other_backend =
            JobSpec::parse(&submission("").replace("\"scalar\"", "\"auto\"")).unwrap();
        assert_ne!(base.fingerprint(), other_backend.fingerprint());
        let other_angle = JobSpec::parse(&submission("").replace("0.25", "0.5")).unwrap();
        assert_ne!(base.fingerprint(), other_angle.fingerprint());
        let with_obs = JobSpec::parse(&submission(",\"observables\":[\"Z0\"]")).unwrap();
        assert_ne!(base.fingerprint(), with_obs.fingerprint());
    }
}
