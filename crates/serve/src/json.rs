//! A minimal nested-JSON parser and writer for the wire protocol.
//!
//! The telemetry sink's flat-object parser cannot represent a job
//! submission (`"circuit"` is an array of gate objects), so the server
//! carries its own small recursive-descent parser. Same philosophy as
//! the sink: the vendored `serde` is an API stub, the schema is small
//! and known, and a DOM of a few dozen nodes per request is cheap.
//!
//! Writing stays string-building ([`escape_into`], and the response
//! renderers in the server) — `f64` values go through `Display`, which
//! in Rust prints the shortest round-trip representation, so a given
//! result renders to *byte-identical* JSON every time. The result cache
//! and the conformance suite rely on that.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All JSON numbers parse as `f64`; integral accessors check range.
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member of an object, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// A non-negative integer that fits exactly in an `f64`.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53) {
            Some(n as u64)
        } else {
            None
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Parse one JSON document. Returns `Err` with a short human-readable
/// reason on malformed input — the server maps it to a 400, never a
/// panic.
pub fn parse(src: &str) -> Result<Value, String> {
    let bytes = src.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at offset {pos}", pos = *pos))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}", pos = *pos));
        }
        *pos += 1;
        let val = parse_value(b, pos)?;
        map.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}", pos = *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '['
    let mut arr = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(arr));
    }
    loop {
        arr.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(arr));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}", pos = *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".to_string()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input arrived as &str, so
                // boundaries are valid).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "bad utf-8")?;
                let c = rest.chars().next().unwrap();
                if (c as u32) < 0x20 {
                    return Err("control character in string".to_string());
                }
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad number")?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number '{text}' at offset {start}"))
}

/// Append `s` JSON-escaped (without surrounding quotes) to `out` — the
/// same escaping the telemetry sink uses, so the two wire formats agree.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// `"s"` with escaping, as a fresh string.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_job_submission() {
        let v = parse(
            r#"{"tenant":"acme","n":3,"shots":100,"seed":7,
                "circuit":[{"gate":"h","q":[0]},{"gate":"rx","q":[1],"theta":0.5}],
                "observables":["Z0 Z1"]}"#,
        )
        .unwrap();
        assert_eq!(v.get("tenant").unwrap().as_str(), Some("acme"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        let gates = v.get("circuit").unwrap().as_arr().unwrap();
        assert_eq!(gates.len(), 2);
        assert_eq!(gates[1].get("theta").unwrap().as_f64(), Some(0.5));
        assert_eq!(v.get("observables").unwrap().as_arr().unwrap()[0].as_str(), Some("Z0 Z1"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse(r#""a\"b\\c\nA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nA"));
        assert_eq!(quote("a\"b\\c\n"), r#""a\"b\\c\n""#);
    }

    #[test]
    fn integral_accessor_guards_range() {
        assert_eq!(parse("12").unwrap().as_u64(), Some(12));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }
}
