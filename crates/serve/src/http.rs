//! Hand-rolled HTTP/1.1 over [`std::net::TcpStream`].
//!
//! The server speaks the minimal subset a JSON job API needs: request
//! line, case-insensitive headers, `Content-Length` bodies, keep-alive.
//! No chunked encoding, no TLS, no HTTP/2 — clients that need those sit
//! behind a real reverse proxy; this is the in-process protocol in the
//! same no-new-deps spirit as the JSONL telemetry sink.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest request body the server will read; a JSON gate list for any
/// admissible circuit fits comfortably.
pub const MAX_BODY_BYTES: usize = 4 << 20;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    /// Path only — query strings are not part of this API.
    pub path: String,
    pub body: String,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

/// Read one request off the stream. `Ok(None)` means the peer closed
/// the connection cleanly before sending another request (normal end of
/// a keep-alive session); `Err` covers malformed or oversized requests.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> std::io::Result<Option<Request>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let path = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(bad("malformed request line"));
    }
    // HTTP/1.1 defaults to keep-alive; "Connection: close" opts out.
    let mut keep_alive = version == "HTTP/1.1";
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(bad("connection closed mid-headers"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(bad("malformed header"));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().map_err(|_| bad("unparseable content-length"))?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(bad("request body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| bad("request body is not utf-8"))?;
    Ok(Some(Request { method, path, body, keep_alive }))
}

/// Canonical reason phrases for the statuses this API emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write one JSON response.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        status,
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn bad(why: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, why)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn over_socket(raw: &[u8]) -> std::io::Result<Option<Request>> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        tx.write_all(raw).unwrap();
        drop(tx);
        let (rx, _) = listener.accept().unwrap();
        read_request(&mut BufReader::new(rx))
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            over_socket(b"POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}")
                .unwrap()
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.body, "{\"a\":1}");
        assert!(req.keep_alive);
    }

    #[test]
    fn connection_close_is_honoured() {
        let req =
            over_socket(b"GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive);
        assert!(req.body.is_empty());
    }

    #[test]
    fn clean_eof_is_none_and_garbage_is_err() {
        assert!(over_socket(b"").unwrap().is_none());
        assert!(over_socket(b"NOT-HTTP\r\n\r\n").is_err());
        assert!(over_socket(b"GET / HTTP/1.1\r\nContent-Length: zap\r\n\r\n").is_err());
    }
}
