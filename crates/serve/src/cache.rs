//! Result cache: repeated popular circuits are free.
//!
//! Keyed by `(fingerprint, seed, shots)` — the fingerprint already
//! covers width, gate stream, strategy, backend, and observables (see
//! [`JobSpec::fingerprint`](crate::job::JobSpec::fingerprint)), and
//! seed/shots pin the sampling — so a hit can return the *stored bytes*
//! of the earlier result and remain bit-identical to recomputing it.
//! Bounded FIFO eviction: the serving win is bursts of the same popular
//! circuit, which FIFO captures without LRU bookkeeping.

use std::collections::{HashMap, VecDeque};

/// Cache key: `(job fingerprint, seed, shots)`.
pub type CacheKey = (u64, u64, u64);

/// A bounded map from finished work to its exact result body.
#[derive(Debug)]
pub struct ResultCache {
    map: HashMap<CacheKey, String>,
    order: VecDeque<CacheKey>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl ResultCache {
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache { map: HashMap::new(), order: VecDeque::new(), capacity, hits: 0, misses: 0 }
    }

    /// Look up a finished result, counting the hit or miss.
    pub fn lookup(&mut self, key: CacheKey) -> Option<String> {
        match self.map.get(&key) {
            Some(body) => {
                self.hits += 1;
                Some(body.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Store a finished result body, evicting the oldest entry at
    /// capacity. Re-inserting an existing key refreshes nothing — the
    /// body is deterministic for the key, so the first write stands.
    pub fn insert(&mut self, key: CacheKey, body: String) {
        if self.capacity == 0 || self.map.contains_key(&key) {
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
            }
        }
        self.map.insert(key, body);
        self.order.push_back(key);
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_stored_bytes() {
        let mut cache = ResultCache::new(4);
        assert!(cache.lookup((1, 2, 3)).is_none());
        cache.insert((1, 2, 3), "{\"x\":1}".to_string());
        assert_eq!(cache.lookup((1, 2, 3)).as_deref(), Some("{\"x\":1}"));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn fifo_eviction_bounds_the_map() {
        let mut cache = ResultCache::new(2);
        cache.insert((1, 0, 0), "a".into());
        cache.insert((2, 0, 0), "b".into());
        cache.insert((3, 0, 0), "c".into());
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup((1, 0, 0)).is_none());
        assert_eq!(cache.lookup((3, 0, 0)).as_deref(), Some("c"));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = ResultCache::new(0);
        cache.insert((1, 0, 0), "a".into());
        assert!(cache.is_empty());
        assert!(cache.lookup((1, 0, 0)).is_none());
    }
}
