//! `qcs-dist`: distributed state-vector simulation over the `mpi-sim`
//! substrate.
//!
//! The state is sliced across `2^g` ranks by its top `g` index bits: rank
//! `r` owns the amplitudes whose global index starts with `r`. Qubits
//! below `n − g` are *local* (gates touch only rank-resident amplitudes);
//! the top `g` qubits are *global* — a dense gate on a global qubit pairs
//! each amplitude with one on a partner rank, costing a full local-buffer
//! exchange. That exchange is the communication pattern whose cost the
//! paper's multi-node analysis studies (experiment E5).
//!
//! * [`partition`] — the index split and ownership arithmetic.
//! * [`engine`] — [`DistState`]: gate application with
//!   the three communication regimes (none / pair exchange / global–local
//!   qubit swap), measurement, and gathering.
//! * [`error`] — [`DistError`]: typed failures replacing the engine's
//!   former panics, split into recoverable transients and hard errors.
//! * [`plan`] — [`DistPlan`]: exchange-minimizing qubit-reorder planning
//!   and comm/compute-overlapped execution (`QCS_DIST_PLAN` selects
//!   naive / reorder / overlap; all bit-identical).
//! * [`resilience`] — [`run_resilient`]: coordinated checkpoints,
//!   rollback-and-replay, and integrity guards over the engine.

pub mod engine;
pub mod error;
pub mod partition;
pub mod plan;
pub mod remap;
pub mod resilience;

pub use engine::{run_distributed, run_distributed_traced, DistState};
pub use error::DistError;
pub use partition::Partition;
pub use plan::{
    plan_circuit, run_distributed_planned, run_distributed_planned_traced, DistPlan, DistPlanKind,
    PlannedGate,
};
pub use remap::{run_distributed_mapped, MappedDistState};
pub use resilience::{run_resilient, RecoveryReport, ResilienceConfig, ResilientRun};
