//! Lazy qubit-remapping: the communication-avoidance optimization.
//!
//! The plain engine restores the global/local layout after every
//! relocated gate (swap in → apply → swap out). But circuits frequently
//! touch the same high qubit many times in a row (QFT's ladder, rotation
//! layers); swapping back between consecutive touches wastes a full
//! exchange each time.
//!
//! [`MappedDistState`] instead tracks a *logical → physical* qubit
//! permutation. When a logical qubit mapped to a global physical slot is
//! hit by a dense gate, it is swapped with some local physical slot and
//! **left there**; the map absorbs the move. Subsequent gates on that
//! qubit are then free. The layout is only normalized when the caller
//! asks for the final state.
//!
//! This is the standard "qubit remapping" optimization of distributed
//! state-vector simulators (QuEST's and Qiskit Aer's MPI backends do the
//! same), and the measured byte counts quantify its benefit (E5).

use mpi_sim::Comm;
use qcs_core::circuit::{Circuit, Gate};
use qcs_core::state::StateVector;

use crate::engine::DistState;
use crate::error::DistError;

/// A distributed state plus a logical→physical qubit permutation.
pub struct MappedDistState {
    inner: DistState,
    /// `phys_of[logical]` = current physical qubit position.
    phys_of: Vec<u32>,
}

impl MappedDistState {
    /// The |0…0⟩ state with the identity mapping.
    pub fn zero(n_qubits: u32, comm: &Comm) -> MappedDistState {
        MappedDistState { inner: DistState::zero(n_qubits, comm), phys_of: (0..n_qubits).collect() }
    }

    /// Current physical position of a logical qubit.
    pub fn physical_of(&self, logical: u32) -> u32 {
        self.phys_of[logical as usize]
    }

    /// Apply one gate, relocating global qubits lazily.
    pub fn apply_gate(&mut self, comm: &mut Comm, gate: &Gate) -> Result<(), DistError> {
        let part = self.inner.partition();
        let phys_gate = gate.remap(|q| self.phys_of[q as usize]);

        // Dense (non-diagonal) gates with global physical qubits: pull
        // each such qubit into a local slot first, updating the map, so
        // the gate itself runs locally. Diagonal gates and gates the
        // engine can handle with one pair exchange (dense 1q, controlled)
        // go straight through — a single exchange is exactly what the
        // relocation would cost, with no locality benefit afterwards for
        // diagonals, but dense gates DO benefit, so relocate for those.
        let needs_relocation = {
            let qs = phys_gate.qubits();
            let has_global = qs.iter().any(|&q| !part.is_local(q));
            has_global && !phys_gate.is_diagonal()
        };

        if needs_relocation {
            let globals: Vec<u32> = gate
                .qubits()
                .iter()
                .copied()
                .filter(|&lq| !part.is_local(self.phys_of[lq as usize]))
                .collect();
            for lq in globals {
                self.pull_local(comm, lq, gate)?;
            }
            let phys_gate = gate.remap(|q| self.phys_of[q as usize]);
            debug_assert!(phys_gate.qubits().iter().all(|&q| part.is_local(q)));
            self.inner.apply_gate(comm, &phys_gate)
        } else {
            self.inner.apply_gate(comm, &phys_gate)
        }
    }

    /// Bring logical qubit `lq`'s amplitude axis into a local physical
    /// slot by swapping with the least-recently-useful local slot, and
    /// record the move in the map.
    fn pull_local(&mut self, comm: &mut Comm, lq: u32, gate: &Gate) -> Result<(), DistError> {
        let part = self.inner.partition();
        let g_phys = self.phys_of[lq as usize];
        debug_assert!(!part.is_local(g_phys));
        // Choose a local physical slot whose logical owner is not used by
        // this gate (so we don't evict a qubit the gate needs).
        let gate_phys: Vec<u32> = gate.qubits().iter().map(|&q| self.phys_of[q as usize]).collect();
        let victim_phys =
            (0..part.n_local()).find(|p| !gate_phys.contains(p)).ok_or_else(|| {
                DistError::UnsupportedGate {
                    gate: gate.name().to_string(),
                    reason: format!(
                        "no free local slot to relocate onto ({} local qubits per rank)",
                        part.n_local()
                    ),
                }
            })?;
        self.inner.swap_physical(comm, g_phys, victim_phys)?;
        // Update the permutation: the logical qubits at these two
        // physical slots trade places.
        let victim_logical = self
            .phys_of
            .iter()
            .position(|&p| p == victim_phys)
            .ok_or_else(|| DistError::internal("qubit permutation lost a physical slot"))?;
        self.phys_of[lq as usize] = victim_phys;
        self.phys_of[victim_logical] = g_phys;
        Ok(())
    }

    /// Run a circuit.
    pub fn apply_circuit(&mut self, comm: &mut Comm, circuit: &Circuit) -> Result<(), DistError> {
        for g in circuit.gates() {
            self.apply_gate(comm, g)?;
        }
        Ok(())
    }

    /// Restore the identity layout (logical qubit `q` at physical `q`)
    /// with explicit swaps, then return the inner state.
    pub fn normalize_layout(&mut self, comm: &mut Comm) -> Result<(), DistError> {
        for logical in 0..self.phys_of.len() as u32 {
            let current = self.phys_of[logical as usize];
            if current != logical {
                // Swap physical axes `current` and `logical`.
                self.inner.swap_physical_any(comm, current, logical)?;
                let other =
                    self.phys_of.iter().position(|&p| p == logical).ok_or_else(|| {
                        DistError::internal("qubit permutation lost a logical slot")
                    })?;
                self.phys_of[logical as usize] = logical;
                self.phys_of[other] = current;
            }
        }
        Ok(())
    }

    /// Normalize and reassemble the full state on every rank.
    pub fn allgather_full(&mut self, comm: &mut Comm) -> Result<StateVector, DistError> {
        self.normalize_layout(comm)?;
        Ok(self.inner.allgather_full(comm))
    }
}

/// Harness mirroring [`crate::engine::run_distributed`] with the lazy
/// mapping enabled.
pub fn run_distributed_mapped(
    circuit: &Circuit,
    n_ranks: usize,
) -> Result<(StateVector, Vec<mpi_sim::CommStats>), DistError> {
    let (states, stats) = mpi_sim::World::run_with_stats(n_ranks, |comm| {
        let mut st = MappedDistState::zero(circuit.n_qubits(), comm);
        st.apply_circuit(comm, circuit)?;
        st.allgather_full(comm)
    });
    let mut first = None;
    for s in states {
        let s: StateVector = s?;
        if first.is_none() {
            first = Some(s);
        }
    }
    let state = first.ok_or_else(|| DistError::internal("world produced no ranks"))?;
    Ok((state, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{run_distributed_planned, DistPlanKind};
    use qcs_core::library;
    use qcs_core::sim::Simulator;

    const EPS: f64 = 1e-10;

    fn serial(circuit: &Circuit) -> StateVector {
        let mut s = StateVector::zero(circuit.n_qubits());
        Simulator::new().run(circuit, &mut s).unwrap();
        s
    }

    fn check(circuit: &Circuit, ranks: usize) {
        let reference = serial(circuit);
        let (mapped, _) = run_distributed_mapped(circuit, ranks).unwrap();
        assert!(
            mapped.approx_eq(&reference, EPS),
            "ranks={ranks}: max diff {}",
            mapped.max_abs_diff(&reference)
        );
    }

    #[test]
    fn mapped_matches_serial_on_families() {
        for circuit in [
            library::ghz(8),
            library::qft(7),
            library::random_circuit(7, 8, 3),
            library::quantum_volume(6, 4),
            library::trotter_ising(7, 2, 1.0, 0.6, 0.1),
        ] {
            for ranks in [2usize, 4] {
                check(&circuit, ranks);
            }
        }
    }

    #[test]
    fn mapped_matches_serial_with_eight_ranks() {
        check(&library::random_circuit(8, 10, 9), 8);
    }

    /// Algorithm-only bytes: subtract the final-allgather baseline that
    /// both harnesses pay.
    fn algorithm_bytes(
        run: impl Fn(&Circuit, usize) -> Result<(StateVector, Vec<mpi_sim::CommStats>), DistError>,
        circuit: &Circuit,
        ranks: usize,
    ) -> u64 {
        let (_, with) = run(circuit, ranks).unwrap();
        let (_, base) = run(&Circuit::new(circuit.n_qubits()), ranks).unwrap();
        with.iter().zip(&base).map(|(a, b)| a.bytes_sent.saturating_sub(b.bytes_sent)).sum()
    }

    #[test]
    fn repeated_high_qubit_gates_communicate_less_with_mapping() {
        // Ten H gates on the top qubit: plain engine exchanges ten
        // buffers; mapped engine pays one relocation (half a buffer) plus
        // one layout-normalization swap and runs the rest locally.
        let n = 10u32;
        let ranks = 4usize;
        let mut c = Circuit::new(n);
        for _ in 0..10 {
            c.h(n - 1);
            c.t(n - 1); // diagonal, free either way
        }
        let plain =
            algorithm_bytes(|c, r| run_distributed_planned(c, r, DistPlanKind::Naive), &c, ranks);
        let mapped = algorithm_bytes(run_distributed_mapped, &c, ranks);
        assert!(
            mapped * 5 <= plain,
            "mapping should slash repeated-touch traffic: {mapped} vs {plain}"
        );
        // And of course the states agree.
        check(&c, ranks);
    }

    #[test]
    fn rotation_layers_on_top_qubits_benefit() {
        let n = 10u32;
        let ranks = 4usize;
        let mut c = Circuit::new(n);
        for l in 0..6 {
            c.rx(n - 1, 0.1 * (l + 1) as f64);
            c.ry(n - 2, 0.2 * (l + 1) as f64);
        }
        let plain_total =
            algorithm_bytes(|c, r| run_distributed_planned(c, r, DistPlanKind::Naive), &c, ranks);
        let mapped_total = algorithm_bytes(run_distributed_mapped, &c, ranks);
        assert!(
            mapped_total < plain_total,
            "mapped {mapped_total} should beat plain {plain_total}"
        );
        check(&c, ranks);
    }

    #[test]
    fn normalize_layout_is_idempotent() {
        let c = library::random_circuit(8, 6, 4);
        let results = mpi_sim::World::run(4, |comm| {
            let mut st = MappedDistState::zero(8, comm);
            st.apply_circuit(comm, &c).unwrap();
            st.normalize_layout(comm).unwrap();
            let a = st.inner.allgather_full(comm);
            st.normalize_layout(comm).unwrap(); // second normalize: no-op
            let b = st.inner.allgather_full(comm);
            (a, b)
        });
        for (a, b) in results {
            assert!(a.approx_eq(&b, 0.0));
        }
    }
}
