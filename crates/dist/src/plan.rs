//! Exchange-minimizing distributed execution plans.
//!
//! The plain engine ([`crate::engine`]) pays communication *per gate*: a
//! dense gate on a global qubit exchanges a whole local buffer (pair
//! exchange) or a half buffer twice (relocate in, relocate out). Real
//! distributed simulators (mpiQulacs, QuEST, Qiskit Aer) instead plan a
//! sequence of global↔local qubit *permutations* over the whole circuit,
//! so each relocation is paid once and amortized over every subsequent
//! gate that benefits. This module is that planner, plus two executors:
//!
//! * [`DistPlanKind::Reorder`] — walk the circuit tracking a
//!   logical→physical qubit permutation; when a gate needs a global
//!   qubit resident, swap it with the local slot whose occupant's next
//!   dense use lies farthest ahead (Belady's rule) and leave it there.
//!   Logical `Swap` gates are absorbed into the permutation outright at
//!   zero cost. Every step's gate is communication-free after its
//!   `pre_swaps`; the only wire traffic is half-buffer swaps.
//! * [`DistPlanKind::Overlap`] — same plan, but comm-free gates that
//!   avoid the top local axis are *deferred* and folded into the next
//!   swap of that axis as the resident work of
//!   `DistState::swap_top_overlapped`: each rank applies them to its
//!   outgoing half before departure and to its resident half while the
//!   chunked nonblocking exchange is in flight, hiding the wire time
//!   behind compute.
//!
//! **Bit-exactness.** Both planned executors produce states
//! bit-identical to [`DistPlanKind::Naive`] and to the serial engine:
//! relocated gates run through the ordinary kernel dispatch, and victims
//! are drawn from local slots `≥ 2` whenever possible so a relocated
//! dense gate takes the same SIMD-vs-scalar kernel path the serial axis
//! would (slots 0 and 1 are only evicted when a gate needs more
//! relocations than there are high slots — impossible for the supported
//! gate set once `n_local ≥ 5`). The final layout is *not* restored with
//! extra swaps; the gather allgathers raw slices and unpermutes locally
//! at zero communication cost.
//!
//! The planner also prices its own plan: [`DistPlan::profile`] is an
//! exact [`ExchangeProfile`] (bytes, messages, phases, hidden bytes) in
//! the units [`qcs_core::perf::predict_distributed`] consumes, so the
//! α–β comm model and the measured [`mpi_sim::CommStats`] can be joined
//! without any out-of-band accounting.

use mpi_sim::{Comm, World};
use qcs_core::circuit::{Circuit, Gate};
use qcs_core::perf::ExchangeProfile;
use qcs_core::state::StateVector;
use qcs_core::telemetry::{RunMeta, TelemetryConfig, Trace, Tracer};
use std::sync::Arc;

use crate::engine::{DistState, OVERLAP_CHUNKS};
use crate::error::DistError;
use crate::partition::Partition;

/// How far ahead the planner scans when scoring eviction victims
/// (Belady's farthest-next-use rule); gates beyond the horizon count as
/// never used again.
const BELADY_HORIZON: usize = 4096;

/// Lowest local slot a relocated dense gate may land on without risking
/// a SIMD-vs-scalar kernel-path divergence from the serial engine
/// (strides below the widest vector width fall back to scalar kernels,
/// whose rounding differs from the FMA-based vector lanes).
const SIMD_SAFE_SLOT: u32 = 2;

/// How a distributed run schedules its communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DistPlanKind {
    /// Per-gate exchanges, no planning — the engine's original regimes.
    #[default]
    Naive,
    /// Exchange-minimizing qubit reordering with blocking swaps.
    Reorder,
    /// Reordering plus comm/compute overlap: swaps of the top local
    /// axis run chunked and nonblocking while deferred comm-free gates
    /// execute on resident data.
    Overlap,
}

impl DistPlanKind {
    /// All plan kinds, in escalating-optimization order.
    pub const ALL: [DistPlanKind; 3] =
        [DistPlanKind::Naive, DistPlanKind::Reorder, DistPlanKind::Overlap];

    /// The CLI/env spelling.
    pub fn name(self) -> &'static str {
        match self {
            DistPlanKind::Naive => "naive",
            DistPlanKind::Reorder => "reorder",
            DistPlanKind::Overlap => "overlap",
        }
    }

    /// Read `QCS_DIST_PLAN`; unset or unrecognized values fall back to
    /// [`DistPlanKind::Naive`] (the conservative per-gate engine).
    pub fn from_env() -> DistPlanKind {
        std::env::var("QCS_DIST_PLAN")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DistPlanKind::Naive)
    }
}

impl std::fmt::Display for DistPlanKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for DistPlanKind {
    type Err = String;

    fn from_str(s: &str) -> Result<DistPlanKind, String> {
        match s.to_ascii_lowercase().as_str() {
            "naive" => Ok(DistPlanKind::Naive),
            "reorder" => Ok(DistPlanKind::Reorder),
            "overlap" => Ok(DistPlanKind::Overlap),
            other => Err(format!("unknown dist plan `{other}` (naive|reorder|overlap)")),
        }
    }
}

/// One circuit gate under the plan: the global↔local swaps that must
/// precede it, then the gate itself remapped onto physical axes. After
/// the `pre_swaps` the gate is communication-free (the planner
/// guarantees it), so the resilient executor can step gate-by-gate and
/// checkpoint at gate boundaries exactly as it does for the naive
/// engine — the physical layout at any gate index is a pure function of
/// the plan prefix.
#[derive(Debug, Clone)]
pub struct PlannedGate {
    /// `(global physical axis, local physical axis)` swaps, in order.
    pub pre_swaps: Vec<(u32, u32)>,
    /// The gate on physical axes (comm-free for planned kinds; for
    /// [`DistPlanKind::Naive`] it is the original gate and may still
    /// communicate through the engine's per-gate regimes). `None` when
    /// the planner absorbed the gate entirely into its qubit
    /// permutation: a logical `Swap` is a pure relabeling of amplitude
    /// axes, so planned kinds execute it as a map update and let the
    /// gather's unpermutation realize it — zero communication, zero
    /// compute, bit-exact (no amplitude is touched at all).
    pub gate: Option<Gate>,
}

/// One executor action of the overlap schedule (derived from the
/// gate-aligned steps by [`DistPlan::overlap_schedule`]).
#[derive(Debug, Clone)]
pub enum PlanOp {
    /// Apply a comm-free physical gate to resident data (boxed: the
    /// gate payload dwarfs the other variants).
    Gate(Box<Gate>),
    /// Blocking global–local swap of physical axes `(global, local)`.
    Swap(u32, u32),
    /// Chunked nonblocking swap of `(gq, n_local − 1)` with the deferred
    /// comm-free gates applied per-half around/during the flight.
    OverlapSwap {
        /// Global physical axis being swapped with the top local axis.
        gq: u32,
        /// Earlier comm-free gates (avoiding the top local axis) whose
        /// application is hidden behind the exchange.
        resident: Vec<Gate>,
    },
}

/// A complete execution plan for one circuit over one partition.
#[derive(Debug, Clone)]
pub struct DistPlan {
    /// Scheduling policy this plan was built for.
    pub kind: DistPlanKind,
    /// Partition geometry the plan assumes.
    pub part: Partition,
    /// Gate-aligned steps (one per circuit gate, in order).
    pub steps: Vec<PlannedGate>,
    /// Final layout: `logical_at[p]` = logical qubit living on physical
    /// axis `p` when the circuit ends. Identity for the naive kind.
    pub logical_at: Vec<u32>,
    /// Exact exchange accounting of this plan, in the per-rank units
    /// [`qcs_core::perf::predict_distributed`] consumes.
    pub profile: ExchangeProfile,
}

/// Does `gate` require qubit `q` to sit on a local axis? Diagonal gates
/// never do, and a controlled gate's *control* may stay global (the
/// engine predicates on the rank bit); everything else dense does.
fn must_be_local(gate: &Gate, q: u32) -> bool {
    if gate.is_diagonal() || !gate.qubits().contains(&q) {
        return false;
    }
    match gate.as_controlled() {
        Some((c, _, _)) => q != c,
        None => true,
    }
}

/// Distance (in gates) from `gates[from]` to the next gate that needs
/// logical qubit `q` on a local axis, following `q` through future
/// absorbed `Swap` relabelings; [`BELADY_HORIZON`] when none. The
/// eviction rule built on this is Belady's optimal offline policy:
/// evict the occupant whose next dense use is farthest away.
fn next_dense_use(gates: &[Gate], from: usize, q: u32) -> usize {
    let mut q = q;
    for (d, g) in gates[from..].iter().take(BELADY_HORIZON).enumerate() {
        if let Gate::Swap(a, b) = *g {
            // Absorbed by planned kinds: only relabels the tracked qubit.
            if q == a {
                q = b;
            } else if q == b {
                q = a;
            }
            continue;
        }
        if must_be_local(g, q) {
            return d;
        }
    }
    BELADY_HORIZON
}

/// The global physical axes of `pg` that must be swapped local before
/// the gate can run comm-free. For controlled gates only the target
/// relocates (a global control is free); for other dense gates every
/// global qubit relocates. Only called when `pg` is not comm-free, so
/// the controlled case always has a global target.
fn globals_to_localize(part: &Partition, pg: &Gate) -> Vec<u32> {
    if let Some((_, t, _)) = pg.as_controlled() {
        debug_assert!(!part.is_local(t));
        return vec![t];
    }
    pg.qubits().into_iter().filter(|&q| !part.is_local(q)).collect()
}

/// Build the execution plan for `circuit` over `n_ranks`.
pub fn plan_circuit(
    circuit: &Circuit,
    n_ranks: usize,
    kind: DistPlanKind,
) -> Result<DistPlan, DistError> {
    let part = Partition::new(circuit.n_qubits(), n_ranks);
    let n = circuit.n_qubits() as usize;
    let gates = circuit.gates();

    if kind == DistPlanKind::Naive {
        let steps = gates
            .iter()
            .map(|g| PlannedGate { pre_swaps: Vec::new(), gate: Some(g.clone()) })
            .collect();
        return Ok(DistPlan {
            kind,
            part,
            steps,
            logical_at: (0..n as u32).collect(),
            profile: naive_profile(&part, gates),
        });
    }

    let mut phys_of: Vec<u32> = (0..n as u32).collect();
    let mut logical_at: Vec<u32> = (0..n as u32).collect();
    let mut steps = Vec::with_capacity(gates.len());
    for (i, gate) in gates.iter().enumerate() {
        // A logical Swap is a pure relabeling of amplitude axes: absorb
        // it into the permutation instead of moving any data. The step
        // stays in the plan (gate `None`) so gate indices still align
        // with the circuit for the resilient checkpoint loop.
        if let Gate::Swap(a, b) = *gate {
            let pa = phys_of[a as usize];
            let pb = phys_of[b as usize];
            phys_of.swap(a as usize, b as usize);
            logical_at[pa as usize] = b;
            logical_at[pb as usize] = a;
            steps.push(PlannedGate { pre_swaps: Vec::new(), gate: None });
            continue;
        }
        let pg = gate.remap(|q| phys_of[q as usize]);
        let mut pre_swaps = Vec::new();
        if !DistState::is_comm_free(&part, &pg) {
            for gq in globals_to_localize(&part, &pg) {
                let gate_phys: Vec<u32> =
                    gate.qubits().iter().map(|&q| phys_of[q as usize]).collect();
                let candidates: Vec<u32> =
                    (0..part.n_local()).filter(|q| !gate_phys.contains(q)).collect();
                if candidates.is_empty() {
                    return Err(DistError::UnsupportedGate {
                        gate: gate.name().to_string(),
                        reason: format!(
                            "no free local slot to relocate onto ({} local qubits per rank)",
                            part.n_local()
                        ),
                    });
                }
                // Stay on SIMD-safe slots when any exist (bit-exactness
                // with the serial kernel paths); among those, evict the
                // occupant whose next dense use lies farthest ahead
                // (Belady), breaking ties toward the top slot (which is
                // where the overlap executor can hide swaps).
                let safe: Vec<u32> =
                    candidates.iter().copied().filter(|&q| q >= SIMD_SAFE_SLOT).collect();
                let pool = if safe.is_empty() { candidates } else { safe };
                let victim = pool
                    .into_iter()
                    .max_by_key(|&slot| {
                        let occupant = logical_at[slot as usize];
                        (next_dense_use(gates, i + 1, occupant), slot)
                    })
                    .expect("candidate pool is non-empty");
                pre_swaps.push((gq, victim));
                let incoming = logical_at[gq as usize];
                let evicted = logical_at[victim as usize];
                logical_at[gq as usize] = evicted;
                logical_at[victim as usize] = incoming;
                phys_of[incoming as usize] = victim;
                phys_of[evicted as usize] = gq;
            }
        }
        let pg = gate.remap(|q| phys_of[q as usize]);
        debug_assert!(DistState::is_comm_free(&part, &pg), "planned gate must be comm-free");
        steps.push(PlannedGate { pre_swaps, gate: Some(pg) });
    }

    let mut plan = DistPlan { kind, part, steps, logical_at, profile: ExchangeProfile::default() };
    plan.profile = match kind {
        DistPlanKind::Naive => unreachable!("handled above"),
        DistPlanKind::Reorder => reorder_profile(&part, &plan.steps),
        DistPlanKind::Overlap => overlap_profile(&part, &plan.overlap_schedule()),
    };
    Ok(plan)
}

impl DistPlan {
    /// Derive the overlap executor's op sequence from the gate-aligned
    /// steps: comm-free gates avoiding the top local axis are deferred
    /// and folded into the next swap *of* that axis as resident work;
    /// any other swap or top-axis gate flushes the deferral first (those
    /// gates were planned for the pre-swap layout and must run before
    /// it changes).
    pub fn overlap_schedule(&self) -> Vec<PlanOp> {
        let lq = self.part.n_local() - 1;
        let mut ops = Vec::new();
        let mut pending: Vec<Gate> = Vec::new();
        let flush = |ops: &mut Vec<PlanOp>, pending: &mut Vec<Gate>| {
            ops.extend(pending.drain(..).map(|g| PlanOp::Gate(Box::new(g))));
        };
        for step in &self.steps {
            for (k, &(g, l)) in step.pre_swaps.iter().enumerate() {
                if k == 0 && l == lq && !pending.is_empty() {
                    ops.push(PlanOp::OverlapSwap { gq: g, resident: std::mem::take(&mut pending) });
                } else {
                    flush(&mut ops, &mut pending);
                    ops.push(PlanOp::Swap(g, l));
                }
            }
            match &step.gate {
                None => {} // absorbed into the layout permutation
                Some(g) if g.qubits().contains(&lq) => {
                    flush(&mut ops, &mut pending);
                    ops.push(PlanOp::Gate(Box::new(g.clone())));
                }
                Some(g) => pending.push(g.clone()),
            }
        }
        flush(&mut ops, &mut pending);
        ops
    }
}

/// Wire bytes of one half-buffer swap, per rank.
fn swap_bytes(part: &Partition) -> u64 {
    (part.local_len() as u64 / 2) * 16
}

/// Exchange accounting of the per-gate naive engine (the regimes of
/// [`DistState::apply_gate`]), as per-rank averages — the both-global
/// controlled exchange only involves the control-set half of the ranks,
/// so its volume averages to half a buffer per rank.
fn naive_profile(part: &Partition, gates: &[Gate]) -> ExchangeProfile {
    let full = part.local_len() as u64 * 16;
    let mut p = ExchangeProfile::default();
    for g in gates {
        if DistState::is_comm_free(part, g) {
            continue;
        }
        if g.as_single().is_some() {
            p.bytes_per_rank += full;
            p.messages_per_rank += 1;
            p.phases += 1;
        } else if let Some((c, _, _)) = g.as_controlled() {
            if part.is_local(c) {
                p.bytes_per_rank += full;
            } else {
                // Both global: only ranks with the control bit set
                // exchange — half the world on average.
                p.bytes_per_rank += full / 2;
            }
            p.messages_per_rank += 1;
            p.phases += 1;
        } else {
            // Relocation fallback: swap in + swap out per global qubit,
            // half a buffer each.
            let globals = g.qubits().iter().filter(|&&q| !part.is_local(q)).count() as u64;
            p.bytes_per_rank += 2 * globals * swap_bytes(part);
            p.messages_per_rank += 2 * globals;
            p.phases += 2 * globals;
        }
    }
    p
}

/// Exchange accounting of a reorder plan: one half-buffer message per
/// planned swap, nothing else.
fn reorder_profile(part: &Partition, steps: &[PlannedGate]) -> ExchangeProfile {
    let mut p = ExchangeProfile::default();
    for step in steps {
        for _ in &step.pre_swaps {
            p.bytes_per_rank += swap_bytes(part);
            p.messages_per_rank += 1;
            p.phases += 1;
        }
    }
    p
}

/// Exchange accounting of an overlap schedule: same bytes as reorder
/// (chunking splits messages, not volume); each overlapped swap hides
/// the resident gates' half-buffer sweeps (read + write 16-byte
/// amplitudes) behind the flight.
fn overlap_profile(part: &Partition, ops: &[PlanOp]) -> ExchangeProfile {
    let half_amps = part.local_len() as u64 / 2;
    let mut p = ExchangeProfile::default();
    for op in ops {
        match op {
            PlanOp::Gate(_) => {}
            PlanOp::Swap(..) => {
                p.bytes_per_rank += swap_bytes(part);
                p.messages_per_rank += 1;
                p.phases += 1;
            }
            PlanOp::OverlapSwap { resident, .. } => {
                p.bytes_per_rank += swap_bytes(part);
                p.messages_per_rank +=
                    mpi_sim::chunk_count(half_amps as usize, OVERLAP_CHUNKS) as u64;
                p.phases += 1;
                p.hidden_bytes_per_rank += resident.len() as u64 * half_amps * 32;
            }
        }
    }
    p
}

/// Execute the plan on one rank's state.
pub(crate) fn run_rank_planned(
    st: &mut DistState,
    comm: &mut Comm,
    plan: &DistPlan,
) -> Result<(), DistError> {
    match plan.kind {
        DistPlanKind::Naive | DistPlanKind::Reorder => {
            for step in &plan.steps {
                for &(g, l) in &step.pre_swaps {
                    st.swap_physical(comm, g, l)?;
                }
                if let Some(g) = &step.gate {
                    st.apply_gate(comm, g)?;
                }
            }
        }
        DistPlanKind::Overlap => {
            for op in plan.overlap_schedule() {
                match op {
                    PlanOp::Gate(g) => st.apply_gate(comm, &g)?,
                    PlanOp::Swap(g, l) => st.swap_physical(comm, g, l)?,
                    PlanOp::OverlapSwap { gq, resident } => {
                        st.swap_top_overlapped(comm, gq, &resident, OVERLAP_CHUNKS)?
                    }
                }
            }
        }
    }
    Ok(())
}

/// Gather the full state and undo the plan's final qubit permutation
/// locally — a pure index shuffle, zero extra communication (the
/// alternative, restoring the layout with swaps, would cost one
/// half-buffer exchange per displaced qubit).
pub(crate) fn gather_unpermuted(
    st: &DistState,
    comm: &mut Comm,
    logical_at: &[u32],
) -> StateVector {
    let raw = st.allgather_full(comm);
    if logical_at.iter().enumerate().all(|(p, &l)| p as u32 == l) {
        return raw;
    }
    let amps = raw.amplitudes();
    let mut out = vec![qcs_core::complex::C64::default(); amps.len()];
    for (x, &a) in amps.iter().enumerate() {
        let mut y = 0usize;
        for (p, &l) in logical_at.iter().enumerate() {
            y |= ((x >> p) & 1) << l;
        }
        out[y] = a;
    }
    StateVector::from_amplitudes(&out)
}

/// Run `circuit` from |0…0⟩ over `n_ranks` under an explicit plan kind,
/// returning the reassembled state and per-rank communication
/// statistics. [`crate::run_distributed`] is this with the kind read
/// from `QCS_DIST_PLAN`.
pub fn run_distributed_planned(
    circuit: &Circuit,
    n_ranks: usize,
    kind: DistPlanKind,
) -> Result<(StateVector, Vec<mpi_sim::CommStats>), DistError> {
    let plan = plan_circuit(circuit, n_ranks, kind)?;
    let (states, stats) =
        World::run_with_stats(n_ranks, |comm| -> Result<StateVector, DistError> {
            let mut st = DistState::zero(circuit.n_qubits(), comm);
            run_rank_planned(&mut st, comm, &plan)?;
            Ok(gather_unpermuted(&st, comm, &plan.logical_at))
        });
    let mut first = None;
    for s in states {
        let s: StateVector = s?;
        if first.is_none() {
            first = Some(s);
        }
    }
    let state = first.ok_or_else(|| DistError::internal("world produced no ranks"))?;
    Ok((state, stats))
}

/// [`run_distributed_planned`] with per-rank exchange traces. The
/// overlapped swaps record [`qcs_core::telemetry::ExchangePhase::OverlapSwap`]
/// spans carrying only their *exposed* wall time, so exposed-vs-hidden
/// communication separates directly in the trace.
pub fn run_distributed_planned_traced(
    circuit: &Circuit,
    n_ranks: usize,
    kind: DistPlanKind,
    telemetry: &TelemetryConfig,
) -> Result<(StateVector, Vec<mpi_sim::CommStats>, Vec<Trace>), DistError> {
    let n = circuit.n_qubits();
    let plan = plan_circuit(circuit, n_ranks, kind)?;
    let strategy = match kind {
        DistPlanKind::Naive => format!("dist:{n_ranks}"),
        DistPlanKind::Reorder => format!("dist-reorder:{n_ranks}"),
        DistPlanKind::Overlap => format!("dist-overlap:{n_ranks}"),
    };
    let (results, stats) =
        World::run_with_stats(n_ranks, |comm| -> Result<(StateVector, Trace), DistError> {
            let mut tracer = Tracer::with_defaults(n, 1, telemetry.capacity);
            tracer.set_rank(comm.rank() as i32);
            let tracer = Arc::new(tracer);
            let mut st = DistState::zero(n, comm);
            st.set_tracer(Some(Arc::clone(&tracer)));
            run_rank_planned(&mut st, comm, &plan)?;
            let state = gather_unpermuted(&st, comm, &plan.logical_at);
            st.set_tracer(None);
            let tracer = Arc::try_unwrap(tracer).map_err(|_| {
                DistError::internal("tracer still shared after detaching from state")
            })?;
            let meta = RunMeta {
                strategy: strategy.clone(),
                backend: "exchange".to_string(),
                threads: 1,
                schedule: "static".to_string(),
                n_qubits: n,
                label: telemetry.label.clone(),
            };
            Ok((state, tracer.finish(meta)))
        });
    let mut state = None;
    let mut traces = Vec::with_capacity(n_ranks);
    for r in results {
        let (s, t): (StateVector, Trace) = r?;
        if state.is_none() {
            state = Some(s);
        }
        traces.push(t);
    }
    if telemetry.trace_path.is_some() {
        let mut cfg = telemetry.clone();
        for trace in &traces {
            let _ = qcs_core::telemetry::write_configured(&cfg, trace);
            cfg.append = true;
        }
    }
    let state = state.ok_or_else(|| DistError::internal("world produced no ranks"))?;
    Ok((state, stats, traces))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_core::library;
    use qcs_core::sim::Simulator;
    use qcs_core::telemetry::{ExchangePhase, SpanKind};

    fn serial(circuit: &Circuit) -> StateVector {
        let mut s = StateVector::zero(circuit.n_qubits());
        Simulator::new().run(circuit, &mut s).unwrap();
        s
    }

    /// Algorithm-only bytes: subtract the final-allgather baseline.
    fn algorithm_bytes(circuit: &Circuit, ranks: usize, kind: DistPlanKind) -> u64 {
        let (_, with) = run_distributed_planned(circuit, ranks, kind).unwrap();
        let (_, base) =
            run_distributed_planned(&Circuit::new(circuit.n_qubits()), ranks, kind).unwrap();
        with.iter().zip(&base).map(|(a, b)| a.bytes_sent.saturating_sub(b.bytes_sent)).sum()
    }

    #[test]
    fn kind_parses_and_round_trips() {
        for kind in DistPlanKind::ALL {
            assert_eq!(kind.name().parse::<DistPlanKind>().unwrap(), kind);
        }
        assert_eq!("OVERLAP".parse::<DistPlanKind>().unwrap(), DistPlanKind::Overlap);
        assert!("fancy".parse::<DistPlanKind>().is_err());
    }

    #[test]
    fn planned_gates_are_comm_free_and_swaps_stay_simd_safe() {
        let c = library::qft(8);
        let plan = plan_circuit(&c, 4, DistPlanKind::Reorder).unwrap();
        for step in &plan.steps {
            if let Some(g) = &step.gate {
                assert!(DistState::is_comm_free(&plan.part, g), "{g:?}");
            }
            for &(g, l) in &step.pre_swaps {
                assert!(!plan.part.is_local(g));
                assert!(plan.part.is_local(l));
                assert!(l >= SIMD_SAFE_SLOT, "victim {l} below the SIMD-safe floor");
            }
        }
    }

    #[test]
    fn all_plan_kinds_are_bit_identical_to_serial() {
        for c in [
            library::qft(8),
            library::ghz(8),
            library::random_circuit(8, 12, 7),
            library::trotter_ising(8, 2, 1.0, 0.6, 0.1),
        ] {
            let reference = serial(&c);
            for ranks in [2usize, 4] {
                for kind in DistPlanKind::ALL {
                    let (state, _) = run_distributed_planned(&c, ranks, kind).unwrap();
                    assert!(
                        state.approx_eq(&reference, 0.0),
                        "{kind} ranks={ranks}: max diff {}",
                        state.max_abs_diff(&reference)
                    );
                }
            }
        }
    }

    #[test]
    fn reorder_slashes_qft_exchange_bytes() {
        // QFT's H ladder touches every global qubit with dense gates; the
        // naive engine pays a full buffer per touch, the planner one half
        // buffer per relocation.
        let c = library::qft(10);
        let naive = algorithm_bytes(&c, 4, DistPlanKind::Naive);
        let reorder = algorithm_bytes(&c, 4, DistPlanKind::Reorder);
        assert!(
            reorder * 2 <= naive,
            "reorder must at least halve QFT traffic: {reorder} vs {naive}"
        );
    }

    #[test]
    fn profile_predicts_measured_reorder_bytes_exactly() {
        let c = library::qft(9);
        let ranks = 4usize;
        let plan = plan_circuit(&c, ranks, DistPlanKind::Reorder).unwrap();
        let measured_world = algorithm_bytes(&c, ranks, DistPlanKind::Reorder);
        assert_eq!(plan.profile.bytes_per_rank * ranks as u64, measured_world);
    }

    #[test]
    fn overlap_moves_the_same_bytes_and_hides_compute() {
        let c = library::qft(9);
        let ranks = 4usize;
        let reorder = plan_circuit(&c, ranks, DistPlanKind::Reorder).unwrap();
        let overlap = plan_circuit(&c, ranks, DistPlanKind::Overlap).unwrap();
        assert_eq!(reorder.profile.bytes_per_rank, overlap.profile.bytes_per_rank);
        assert_eq!(reorder.profile.phases, overlap.profile.phases);
        assert!(
            overlap.profile.hidden_bytes_per_rank > 0,
            "the overlap schedule must defer work behind at least one swap"
        );
        let measured_world = algorithm_bytes(&c, ranks, DistPlanKind::Overlap);
        assert_eq!(overlap.profile.bytes_per_rank * ranks as u64, measured_world);
    }

    #[test]
    fn overlap_schedule_defers_gates_into_swaps() {
        let mut c = Circuit::new(8);
        // Local work, then a dense touch of a global qubit: the planner
        // swaps, and the overlap schedule hides the local work in it.
        c.h(0).h(1).cx(0, 1).h(7);
        let plan = plan_circuit(&c, 4, DistPlanKind::Overlap).unwrap();
        let ops = plan.overlap_schedule();
        let overlapped = ops
            .iter()
            .filter_map(|op| match op {
                PlanOp::OverlapSwap { resident, .. } => Some(resident.len()),
                _ => None,
            })
            .sum::<usize>();
        assert!(overlapped >= 3, "three local gates should ride the swap, saw {overlapped}");
    }

    #[test]
    fn traced_overlap_records_exposed_only_spans() {
        let mut c = Circuit::new(8);
        c.h(0).h(1).h(7);
        let (state, _, traces) =
            run_distributed_planned_traced(&c, 4, DistPlanKind::Overlap, &TelemetryConfig::on())
                .unwrap();
        assert!(state.approx_eq(&serial(&c), 0.0));
        let mut seen = 0;
        for t in &traces {
            assert_eq!(t.meta.strategy, "dist-overlap:4");
            for s in &t.spans {
                if s.kind == SpanKind::Exchange(ExchangePhase::OverlapSwap) {
                    seen += 1;
                    assert_eq!(s.amps, 1 << 5, "half the local buffer per swap");
                    assert!(s.model_ns > 0.0, "overlap spans are priced by the link model");
                }
            }
        }
        assert_eq!(seen, 4, "one overlapped swap per rank");
    }

    #[test]
    fn gather_unpermuted_restores_logical_order() {
        // X on the top qubit, which the planner relocates and leaves
        // displaced: the gather must still produce |10…0⟩… pattern.
        let mut c = Circuit::new(8);
        c.x(7).h(0);
        let reference = serial(&c);
        let (state, _) = run_distributed_planned(&c, 4, DistPlanKind::Reorder).unwrap();
        assert!(state.approx_eq(&reference, 0.0), "diff {}", state.max_abs_diff(&reference));
    }

    #[test]
    fn env_routes_the_default_harness() {
        // Covered indirectly: from_env falls back to Naive on unset or
        // invalid values.
        assert_eq!("naive".parse::<DistPlanKind>().unwrap(), DistPlanKind::Naive);
        assert_eq!(DistPlanKind::default(), DistPlanKind::Naive);
    }
}
