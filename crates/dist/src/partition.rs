//! Ownership arithmetic for the block-distributed state vector.

/// The split of an `n`-qubit state across `2^g` ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    n_qubits: u32,
    /// log₂ of the rank count.
    g: u32,
}

impl Partition {
    /// Build a partition of `n_qubits` over `n_ranks` ranks.
    ///
    /// `n_ranks` must be a power of two, and enough qubits must stay
    /// local for every gate to be executable (≥ 3 local).
    pub fn new(n_qubits: u32, n_ranks: usize) -> Partition {
        assert!(n_ranks.is_power_of_two(), "rank count {n_ranks} is not a power of two");
        let g = n_ranks.trailing_zeros();
        assert!(
            g + 3 <= n_qubits,
            "{n_ranks} ranks on {n_qubits} qubits leaves fewer than 3 local qubits"
        );
        Partition { n_qubits, g }
    }

    /// Total qubits.
    #[inline]
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    /// Local qubits per rank.
    #[inline]
    pub fn n_local(&self) -> u32 {
        self.n_qubits - self.g
    }

    /// Global (distributed) qubits.
    #[inline]
    pub fn n_global(&self) -> u32 {
        self.g
    }

    /// Number of ranks.
    #[inline]
    pub fn n_ranks(&self) -> usize {
        1usize << self.g
    }

    /// Amplitudes held by each rank.
    #[inline]
    pub fn local_len(&self) -> usize {
        1usize << self.n_local()
    }

    /// Is qubit `q` local?
    #[inline]
    pub fn is_local(&self, q: u32) -> bool {
        q < self.n_local()
    }

    /// The global-bit position of qubit `q` within the rank index
    /// (panics if `q` is local).
    #[inline]
    pub fn global_bit(&self, q: u32) -> u32 {
        assert!(!self.is_local(q), "qubit {q} is local");
        q - self.n_local()
    }

    /// The rank owning global amplitude index `i`.
    #[inline]
    pub fn owner(&self, i: usize) -> usize {
        i >> self.n_local()
    }

    /// The local offset of global amplitude index `i`.
    #[inline]
    pub fn local_index(&self, i: usize) -> usize {
        i & (self.local_len() - 1)
    }

    /// Reassemble the global index from (rank, local offset).
    #[inline]
    pub fn global_index(&self, rank: usize, local: usize) -> usize {
        (rank << self.n_local()) | local
    }

    /// Partner rank for a pair exchange on global qubit `q`.
    #[inline]
    pub fn partner(&self, rank: usize, q: u32) -> usize {
        rank ^ (1usize << self.global_bit(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_arithmetic() {
        let p = Partition::new(10, 4);
        assert_eq!(p.n_local(), 8);
        assert_eq!(p.n_global(), 2);
        assert_eq!(p.n_ranks(), 4);
        assert_eq!(p.local_len(), 256);
        assert!(p.is_local(7));
        assert!(!p.is_local(8));
        assert_eq!(p.global_bit(8), 0);
        assert_eq!(p.global_bit(9), 1);
    }

    #[test]
    fn ownership_roundtrip() {
        let p = Partition::new(8, 8);
        for i in 0..(1usize << 8) {
            let r = p.owner(i);
            let l = p.local_index(i);
            assert_eq!(p.global_index(r, l), i);
            assert!(r < 8);
            assert!(l < p.local_len());
        }
    }

    #[test]
    fn single_rank_world() {
        let p = Partition::new(5, 1);
        assert_eq!(p.n_global(), 0);
        assert_eq!(p.local_len(), 32);
        assert_eq!(p.owner(31), 0);
    }

    #[test]
    fn partner_flips_one_bit() {
        let p = Partition::new(10, 8); // local = 7
        assert_eq!(p.partner(0b000, 7), 0b001);
        assert_eq!(p.partner(0b101, 8), 0b111);
        assert_eq!(p.partner(0b101, 9), 0b001);
        // Partnering is an involution.
        for r in 0..8usize {
            for q in 7..10u32 {
                assert_eq!(p.partner(p.partner(r, q), q), r);
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_ranks_rejected() {
        let _ = Partition::new(10, 3);
    }

    #[test]
    #[should_panic(expected = "local")]
    fn too_many_ranks_rejected() {
        let _ = Partition::new(4, 4);
    }
}
