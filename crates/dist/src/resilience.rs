//! Resilient distributed execution: coordinated checkpoints, rollback
//! and replay, and integrity enforcement over the exchange engine.
//!
//! [`run_resilient`] executes a circuit gate-by-gate like
//! [`run_distributed`](crate::engine::run_distributed), but wraps every
//! step in a recovery envelope:
//!
//! * **Coordinated checkpoints** — every `checkpoint_every` gates each
//!   rank snapshots its local shard in memory (and, when
//!   `checkpoint_dir` is set, persists it as a checksummed `.qsh` shard
//!   via [`qcs_core::checkpoint`]). Checkpoint instants are a pure
//!   function of the gate index, so all ranks snapshot at the same
//!   circuit position without extra synchronisation.
//! * **Integrity guards** — when the [`IntegrityPolicy`] is due, ranks
//!   allreduce the squared norm and sweep their shards for NaN/Inf;
//!   `repair` renormalizes in place, `check` turns drift into a
//!   recoverable error.
//! * **Rollback and replay** — a recoverable failure (transport error,
//!   integrity violation, injected fault) rewinds the rank to its last
//!   snapshot and replays from there, burning one unit of the
//!   `max_replays` budget. Each recovery is recorded as an
//!   [`ExchangePhase::Recovery`] exchange span when tracing is on.
//!
//! Recovery is coordinated because every *recoverable* error the
//! substrate produces is deterministic and symmetric: injected faults
//! fire at fixed gate indices on every rank, and integrity verdicts are
//! computed from an allreduced norm all ranks share. Ranks therefore
//! roll back at the same gate without electing a coordinator.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use mpi_sim::collectives::ReduceOp;
use mpi_sim::{Comm, CommStats, FaultPlan, World};
use qcs_core::checkpoint::{Checkpointer, ShardMeta};
use qcs_core::circuit::Circuit;
use qcs_core::complex::C64;
use qcs_core::integrity::{self, IntegrityPolicy, Outcome};
use qcs_core::state::StateVector;
use qcs_core::telemetry::{ExchangePhase, RunMeta, TelemetryConfig, Trace, Tracer};

use crate::engine::DistState;
use crate::error::DistError;
use crate::plan::{gather_unpermuted, plan_circuit, DistPlanKind, PlannedGate};

/// Knobs for [`run_resilient`].
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Fault plan injected into the communication substrate. `None`
    /// falls back to [`FaultPlan::from_env`] (the `QCS_FAULT_SEED` /
    /// `QCS_FAULT_SPEC` variables), so a clean environment runs the
    /// zero-overhead fast path.
    pub fault_plan: Option<FaultPlan>,
    /// Snapshot cadence in gates; `0` keeps only the initial snapshot.
    pub checkpoint_every: usize,
    /// When set, each rank also persists its snapshots as checksummed
    /// shard files under `<dir>/rank<r>/`.
    pub checkpoint_dir: Option<PathBuf>,
    /// How many rollback-and-replay attempts a rank may spend before
    /// giving up with [`DistError::RecoveryExhausted`].
    pub max_replays: u32,
    /// Norm-drift / NaN policy applied between gates.
    pub integrity: IntegrityPolicy,
    /// Gate indices at which every rank fails once with
    /// [`DistError::Injected`] — the deterministic hook the resilience
    /// tests and E13 use to exercise the rollback path end to end.
    pub inject_failures: Vec<usize>,
    /// Telemetry for recovery spans; disabled by default.
    pub telemetry: TelemetryConfig,
    /// Distributed scheduling policy; `None` reads `QCS_DIST_PLAN` like
    /// [`crate::run_distributed`]. The resilient loop steps the plan
    /// gate-by-gate (each step replays its pre-swaps on rollback), so
    /// checkpoints and recovery work identically under every kind, and
    /// all kinds produce bit-identical states. The envelope schedules
    /// every exchange blocking — [`DistPlanKind::Overlap`] keeps its
    /// reduced exchange volume but not the chunked-nonblocking message
    /// pattern, which cannot cross a checkpointable gate boundary.
    pub dist_plan: Option<DistPlanKind>,
}

impl Default for ResilienceConfig {
    fn default() -> ResilienceConfig {
        ResilienceConfig {
            fault_plan: None,
            checkpoint_every: 0,
            checkpoint_dir: None,
            max_replays: 3,
            integrity: IntegrityPolicy::default(),
            inject_failures: Vec::new(),
            telemetry: TelemetryConfig::default(),
            dist_plan: None,
        }
    }
}

/// Per-rank recovery accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Rollback-and-replay cycles performed.
    pub recoveries: u64,
    /// Snapshots taken (beyond the initial one).
    pub checkpoints: u64,
    /// Integrity repairs (renormalizations) applied.
    pub repairs: u64,
    /// Gates re-executed across all replays.
    pub gates_replayed: u64,
}

/// Everything a resilient run produces.
#[derive(Debug, Clone)]
pub struct ResilientRun {
    /// The reassembled final state.
    pub state: StateVector,
    /// Per-rank communication statistics (logical message accounting;
    /// retries and corruption drops appear in the resilience counters).
    pub stats: Vec<CommStats>,
    /// Per-rank recovery accounting.
    pub recovery: Vec<RecoveryReport>,
    /// Per-rank traces when `telemetry.enabled`; empty otherwise.
    pub traces: Vec<Trace>,
}

impl ResilientRun {
    /// Total rollback-and-replay cycles across ranks.
    pub fn total_recoveries(&self) -> u64 {
        self.recovery.iter().map(|r| r.recoveries).sum()
    }

    /// Render this run in the unified [`Outcome`](qcs_core::outcome::Outcome)
    /// schema (kind `"resilient"`, one member per rank). Strategy,
    /// backend, and elapsed time come from the traces when telemetry
    /// was enabled; the recovery counters are summed across ranks.
    pub fn outcome(&self) -> qcs_core::outcome::Outcome {
        let (strategy, backend, threads, n_qubits) = match self.traces.first() {
            Some(t) => {
                (t.meta.strategy.clone(), t.meta.backend.clone(), t.meta.threads, t.meta.n_qubits)
            }
            None => (String::new(), String::new(), 1, self.state.n_qubits()),
        };
        qcs_core::outcome::Outcome {
            kind: "resilient".to_string(),
            label: String::new(),
            elapsed_seconds: self.traces.iter().map(|t| t.summary.wall_ns).max().unwrap_or(0)
                as f64
                * 1e-9,
            strategy,
            backend,
            threads,
            n_qubits,
            gates: 0,
            sweeps: 0,
            members: self.recovery.len() as u64,
            batch_id: 0,
            spans: self.traces.iter().map(|t| t.summary.spans as u64).sum(),
            bytes: self.traces.iter().map(|t| t.summary.bytes).sum(),
            recoveries: self.total_recoveries(),
            checkpoints: self.recovery.iter().map(|r| r.checkpoints).sum(),
            repairs: self.recovery.iter().map(|r| r.repairs).sum(),
            member_stats: self
                .traces
                .iter()
                .enumerate()
                .map(|(m, t)| qcs_core::outcome::MemberStats {
                    member: m as u32,
                    spans: t.summary.spans as u64,
                    bytes: t.summary.bytes,
                    wall_ns: t.summary.wall_ns,
                })
                .collect(),
        }
    }
}

/// Run `circuit` from |0…0⟩ over `n_ranks` with the recovery envelope
/// described in the [module docs](self).
pub fn run_resilient(
    circuit: &Circuit,
    n_ranks: usize,
    cfg: &ResilienceConfig,
) -> Result<ResilientRun, DistError> {
    let plan = cfg.fault_plan.clone().or_else(FaultPlan::from_env);
    let (results, stats) =
        World::run_faulted_with_stats(n_ranks, plan, |comm| run_rank(circuit, n_ranks, cfg, comm));
    let mut state = None;
    let mut recovery = Vec::with_capacity(n_ranks);
    let mut traces = Vec::new();
    for r in results {
        let (s, rep, trace) = r?;
        if state.is_none() {
            state = Some(s);
        }
        recovery.push(rep);
        traces.extend(trace);
    }
    if cfg.telemetry.trace_path.is_some() {
        let mut tcfg = cfg.telemetry.clone();
        for trace in &traces {
            let _ = qcs_core::telemetry::write_configured(&tcfg, trace);
            tcfg.append = true;
        }
    }
    let state = state.ok_or_else(|| DistError::internal("world produced no ranks"))?;
    Ok(ResilientRun { state, stats, recovery, traces })
}

/// One rank's resilient gate loop.
fn run_rank(
    circuit: &Circuit,
    n_ranks: usize,
    cfg: &ResilienceConfig,
    comm: &mut Comm,
) -> Result<(StateVector, RecoveryReport, Option<Trace>), DistError> {
    let n = circuit.n_qubits();
    let tracer = cfg.telemetry.enabled.then(|| {
        let mut t = Tracer::with_defaults(n, 1, cfg.telemetry.capacity);
        t.set_rank(comm.rank() as i32);
        Arc::new(t)
    });
    let mut st = DistState::zero(n, comm);
    if let Some(t) = &tracer {
        st.set_tracer(Some(Arc::clone(t)));
    }
    let ckpt = match &cfg.checkpoint_dir {
        Some(dir) => Some(
            Checkpointer::new(dir.join(format!("rank{}", comm.rank())), "shard", 2)
                .map_err(|e| DistError::Checkpoint(e.to_string()))?,
        ),
        None => None,
    };
    let plan =
        plan_circuit(circuit, n_ranks, cfg.dist_plan.unwrap_or_else(DistPlanKind::from_env))?;
    let mut report = RecoveryReport::default();
    // `snapshot` is the rollback target: (next gate index, shard copy).
    // The physical layout at any gate index is a pure function of the
    // plan prefix, so restoring the shard bytes restores the layout too.
    let mut snapshot: (usize, Vec<C64>) = (0, st.local_amps().to_vec());
    let mut replays_left = cfg.max_replays;
    let mut pending_failures: HashSet<usize> = cfg.inject_failures.iter().copied().collect();
    let gates = &plan.steps;
    let mut i = 0usize;
    while i < gates.len() {
        let t0 = Instant::now();
        let step = step_gate(&mut st, comm, cfg, &mut pending_failures, &mut report, gates, i);
        match step {
            Ok(()) => {
                if cfg.checkpoint_every != 0 && (i + 1).is_multiple_of(cfg.checkpoint_every) {
                    snapshot = (i + 1, st.local_amps().to_vec());
                    report.checkpoints += 1;
                    if let Some(c) = &ckpt {
                        let meta = ShardMeta {
                            n_qubits: n,
                            rank: comm.rank() as u32,
                            step: (i + 1) as u64,
                        };
                        c.save(st.local_amps(), &meta)
                            .map_err(|e| DistError::Checkpoint(e.to_string()))?;
                    }
                }
                i += 1;
            }
            Err(e) if e.recoverable() => {
                if replays_left == 0 {
                    return Err(DistError::RecoveryExhausted {
                        replays: cfg.max_replays,
                        gate_index: i,
                    });
                }
                replays_left -= 1;
                report.recoveries += 1;
                report.gates_replayed += (i - snapshot.0) as u64;
                st.local_amps_mut().copy_from_slice(&snapshot.1);
                // The recovery span carries the failing gate index and
                // the shard volume that was rolled back.
                st.record_exchange(
                    ExchangePhase::Recovery,
                    &[i as u32],
                    snapshot.1.len() as u64,
                    tracer.as_ref().map(|_| t0),
                );
                i = snapshot.0;
            }
            Err(e) => return Err(e),
        }
    }
    let state = gather_unpermuted(&st, comm, &plan.logical_at);
    st.set_tracer(None);
    let trace = match tracer {
        Some(t) => {
            let t = Arc::try_unwrap(t)
                .map_err(|_| DistError::internal("tracer still shared after detach"))?;
            Some(t.finish(RunMeta {
                strategy: format!("dist-resilient:{n_ranks}"),
                backend: "exchange".to_string(),
                threads: 1,
                schedule: "static".to_string(),
                n_qubits: n,
                label: cfg.telemetry.label.clone(),
            }))
        }
        None => None,
    };
    Ok((state, report, trace))
}

/// Apply planned gate `i` (pre-swaps, then the comm-free gate) and,
/// when due, the integrity guard. Fallible so the caller can route
/// everything recoverable through one rollback arm.
fn step_gate(
    st: &mut DistState,
    comm: &mut Comm,
    cfg: &ResilienceConfig,
    pending_failures: &mut HashSet<usize>,
    report: &mut RecoveryReport,
    gates: &[PlannedGate],
    i: usize,
) -> Result<(), DistError> {
    if pending_failures.remove(&i) {
        return Err(DistError::Injected { gate_index: i });
    }
    for &(g, l) in &gates[i].pre_swaps {
        st.swap_physical(comm, g, l)?;
    }
    if let Some(g) = &gates[i].gate {
        st.apply_gate(comm, g)?;
    }
    if cfg.integrity.due(i) {
        let local: f64 = st.local_amps().iter().map(|a| a.norm_sqr()).sum();
        let global = comm.allreduce_scalar(ReduceOp::Sum, local);
        match integrity::enforce_with_norm(&cfg.integrity, st.local_amps_mut(), global, i)? {
            Outcome::Clean => {}
            Outcome::Renormalized { .. } => report.repairs += 1,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_distributed;
    use qcs_core::integrity::IntegrityMode;
    use qcs_core::library;
    use qcs_core::telemetry::SpanKind;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("qcs_resilience_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn resilient_run_without_faults_matches_plain() {
        let c = library::qft(7);
        let (plain, _) = run_distributed(&c, 4).unwrap();
        let run = run_resilient(&c, 4, &ResilienceConfig::default()).unwrap();
        assert!(plain.approx_eq(&run.state, 0.0), "no faults: states must be bit-identical");
        assert_eq!(run.total_recoveries(), 0);
    }

    #[test]
    fn injected_failures_roll_back_and_replay_to_the_same_state() {
        let c = library::qft(7);
        let (plain, _) = run_distributed(&c, 4).unwrap();
        let cfg = ResilienceConfig {
            checkpoint_every: 5,
            inject_failures: vec![2, 11, 17],
            telemetry: TelemetryConfig::on(),
            ..ResilienceConfig::default()
        };
        let run = run_resilient(&c, 4, &cfg).unwrap();
        assert!(plain.approx_eq(&run.state, 0.0), "recovered run must be bit-identical");
        for rep in &run.recovery {
            assert_eq!(rep.recoveries, 3, "one rollback per injected failure");
            assert!(rep.gates_replayed > 0);
        }
        // Every rank recorded one Recovery span per rollback.
        assert_eq!(run.traces.len(), 4);
        for t in &run.traces {
            let recov: Vec<_> = t
                .spans
                .iter()
                .filter(|s| s.kind == SpanKind::Exchange(ExchangePhase::Recovery))
                .collect();
            assert_eq!(recov.len(), 3);
            assert_eq!(recov[0].qubits, vec![2], "span carries the failing gate index");
        }
    }

    #[test]
    fn replay_budget_exhaustion_is_a_typed_error() {
        let c = library::ghz(6);
        let cfg = ResilienceConfig {
            max_replays: 1,
            inject_failures: vec![0, 1],
            ..ResilienceConfig::default()
        };
        let err = run_resilient(&c, 2, &cfg).unwrap_err();
        match err {
            DistError::RecoveryExhausted { replays: 1, .. } => {}
            other => panic!("expected RecoveryExhausted, got {other:?}"),
        }
    }

    #[test]
    fn transport_faults_with_retry_produce_identical_states() {
        // Default-intensity drop/dup/flip/delay faults on every link:
        // the ARQ layer retries until delivery, so the run must complete
        // bit-identically to the fault-free run, with the recovery work
        // visible in the CommStats counters.
        let c = library::random_circuit(7, 8, 21);
        let (clean, _) = run_distributed(&c, 4).unwrap();
        let cfg = ResilienceConfig {
            fault_plan: Some(FaultPlan::default_intensity(7)),
            ..ResilienceConfig::default()
        };
        let run = run_resilient(&c, 4, &cfg).unwrap();
        assert!(clean.approx_eq(&run.state, 0.0), "faulted run must be bit-identical");
        let injected: u64 = run.stats.iter().map(|s| s.faults_injected).sum();
        assert!(injected > 0, "the plan must actually have fired");
        assert_eq!(run.total_recoveries(), 0, "transport-level faults heal below rollback");
    }

    #[test]
    fn integrity_check_passes_on_unitary_circuits() {
        let c = library::qft(6);
        let cfg = ResilienceConfig {
            integrity: IntegrityPolicy { mode: IntegrityMode::Check, ..Default::default() },
            ..ResilienceConfig::default()
        };
        let run = run_resilient(&c, 4, &cfg).unwrap();
        let (plain, _) = run_distributed(&c, 4).unwrap();
        assert!(plain.approx_eq(&run.state, 0.0));
        for rep in &run.recovery {
            assert_eq!(rep.repairs, 0);
        }
    }

    #[test]
    fn disk_checkpoints_are_written_per_rank() {
        let dir = tmpdir("shards");
        let c = library::ghz(6); // 6 gates
        let cfg = ResilienceConfig {
            checkpoint_every: 2,
            checkpoint_dir: Some(dir.clone()),
            ..ResilienceConfig::default()
        };
        let run = run_resilient(&c, 2, &cfg).unwrap();
        for rep in &run.recovery {
            assert_eq!(rep.checkpoints, 3);
        }
        for rank in 0..2 {
            let ck = Checkpointer::new(dir.join(format!("rank{rank}")), "shard", 2).unwrap();
            let (amps, meta) = ck.load_latest().unwrap().expect("latest shard");
            assert_eq!(meta.rank, rank as u32);
            assert_eq!(meta.step, 6);
            assert_eq!(meta.n_qubits, 6);
            assert_eq!(amps.len(), 1 << 5);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faults_and_injected_failures_compose() {
        // Both layers at once: lossy transport below, forced rollbacks
        // above — the answer still has to be exact.
        let c = library::qft(6);
        let (clean, _) = run_distributed(&c, 2).unwrap();
        let cfg = ResilienceConfig {
            fault_plan: Some(FaultPlan::default_intensity(11)),
            checkpoint_every: 4,
            inject_failures: vec![7],
            ..ResilienceConfig::default()
        };
        let run = run_resilient(&c, 2, &cfg).unwrap();
        assert!(clean.approx_eq(&run.state, 0.0));
        assert_eq!(run.total_recoveries(), 2, "one rollback per rank");
    }
}
