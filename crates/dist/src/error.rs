//! Typed errors for the distributed engine.
//!
//! The original engine panicked on every "can't happen" branch —
//! acceptable for a single-process prototype, fatal for a resilient
//! runner that wants to roll back and retry. [`DistError`] captures the
//! failure modes the distributed layer can actually hit so callers (the
//! resilient executor, the CLI, tests) can distinguish *recoverable*
//! transients (transport failures, injected faults, integrity drift)
//! from hard programming or configuration errors.
//!
//! Recovery relies on errors being **deterministic and symmetric**: a
//! gate-classification error ([`DistError::WidthMismatch`],
//! [`DistError::UnsupportedGate`]) depends only on the circuit and the
//! partition geometry, so every rank reaches the same verdict at the
//! same gate and the world tears down (or rolls back) in lockstep
//! without deadlocking a partner mid-exchange.

use mpi_sim::CommError;
use qcs_core::integrity::IntegrityViolation;

/// Everything that can go wrong in the distributed engine.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// A gate the distributed dispatch cannot execute (e.g. a diagonal
    /// gate of arity ≥ 3, or a wide gate with no free local qubit to
    /// relocate onto).
    UnsupportedGate {
        /// Gate name as reported by [`qcs_core::circuit::Gate::name`].
        gate: String,
        /// Why the dispatch rejected it.
        reason: String,
    },
    /// Circuit width does not match the distributed state width.
    WidthMismatch {
        /// Qubits in the circuit.
        circuit: u32,
        /// Qubits in the state.
        state: u32,
    },
    /// The transport gave up on a message (retries exhausted, receive
    /// timeout). Recoverable by rollback when a checkpoint exists.
    Exchange(CommError),
    /// An integrity sweep found non-finite amplitudes or norm drift
    /// beyond tolerance. Recoverable by rollback.
    Integrity(IntegrityViolation),
    /// Checkpoint persistence failed (I/O or corrupt shard).
    Checkpoint(String),
    /// A deterministic fault injected via
    /// [`ResilienceConfig::inject_failures`](crate::resilience::ResilienceConfig::inject_failures).
    /// Always recoverable — it exists to exercise the rollback path.
    Injected {
        /// Gate index at which the failure fired.
        gate_index: usize,
    },
    /// The replay budget ran out while errors kept recurring.
    RecoveryExhausted {
        /// Replays that were attempted.
        replays: u32,
        /// Gate index of the final, unrecovered failure.
        gate_index: usize,
    },
    /// An invariant the engine relies on was violated — a bug, not an
    /// environmental condition.
    Internal(String),
}

impl DistError {
    /// Shorthand for invariant violations.
    pub(crate) fn internal(msg: impl Into<String>) -> DistError {
        DistError::Internal(msg.into())
    }

    /// Whether a rollback-and-replay attempt is sensible for this error.
    ///
    /// Transport failures, integrity violations, and injected faults are
    /// transient: re-running from the last coordinated checkpoint can
    /// succeed. Classification and configuration errors recur
    /// deterministically, so replaying them only burns the budget.
    pub fn recoverable(&self) -> bool {
        matches!(
            self,
            DistError::Exchange(_) | DistError::Integrity(_) | DistError::Injected { .. }
        )
    }
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::UnsupportedGate { gate, reason } => {
                write!(f, "unsupported gate `{gate}`: {reason}")
            }
            DistError::WidthMismatch { circuit, state } => {
                write!(f, "circuit acts on {circuit} qubits but the state holds {state}")
            }
            DistError::Exchange(e) => write!(f, "exchange failed: {e}"),
            DistError::Integrity(v) => write!(f, "integrity violation: {v}"),
            DistError::Checkpoint(msg) => write!(f, "checkpoint failed: {msg}"),
            DistError::Injected { gate_index } => {
                write!(f, "injected failure at gate {gate_index}")
            }
            DistError::RecoveryExhausted { replays, gate_index } => {
                write!(f, "recovery exhausted after {replays} replays (failing gate {gate_index})")
            }
            DistError::Internal(msg) => write!(f, "internal engine error: {msg}"),
        }
    }
}

impl std::error::Error for DistError {}

impl From<CommError> for DistError {
    fn from(e: CommError) -> DistError {
        DistError::Exchange(e)
    }
}

impl From<IntegrityViolation> for DistError {
    fn from(v: IntegrityViolation) -> DistError {
        DistError::Integrity(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transients_are_recoverable_and_hard_errors_are_not() {
        assert!(DistError::Injected { gate_index: 3 }.recoverable());
        assert!(DistError::from(CommError::Timeout { src: 0, tag: 7 }).recoverable());
        assert!(!DistError::WidthMismatch { circuit: 4, state: 8 }.recoverable());
        assert!(!DistError::internal("x").recoverable());
        assert!(!DistError::RecoveryExhausted { replays: 3, gate_index: 1 }.recoverable());
        assert!(!DistError::Checkpoint("disk full".into()).recoverable());
    }

    #[test]
    fn display_is_informative() {
        let e = DistError::UnsupportedGate { gate: "ccx".into(), reason: "no free qubit".into() };
        assert_eq!(e.to_string(), "unsupported gate `ccx`: no free qubit");
        let e = DistError::RecoveryExhausted { replays: 2, gate_index: 9 };
        assert!(e.to_string().contains("2 replays"));
        assert!(e.to_string().contains("gate 9"));
    }
}
