//! The distributed state and its three communication regimes.
//!
//! 1. **No communication** — gates whose qubits are all local, and *any*
//!    diagonal gate (global bits are constant per rank, so the phase
//!    factor is a rank-local constant).
//! 2. **Pair exchange** — a dense 1-qubit (or controlled) gate on a
//!    global qubit: each rank exchanges its whole local buffer with the
//!    partner rank differing in that global bit, then combines rows.
//!    Cost: `2^{n_local}` amplitudes per rank per gate — the dominant
//!    communication term of distributed state-vector simulation.
//! 3. **Global–local qubit swap** — everything else (dense 2q+ gates on
//!    global qubits): swap the global qubit with a free local one (half a
//!    buffer exchanged), apply locally, swap back.

use std::sync::Arc;
use std::time::Instant;

use mpi_sim::Comm;
use qcs_core::align::AlignedAmps;
use qcs_core::circuit::{Circuit, Gate};
use qcs_core::complex::{as_f64_slice, C64};
use qcs_core::kernels::dispatch::apply_gate as apply_local;
use qcs_core::kernels::index::insert_zero_bit;
use qcs_core::state::StateVector;
use qcs_core::telemetry::{ExchangePhase, TelemetryConfig, Trace, Tracer};

use crate::error::DistError;
use crate::partition::Partition;

const TAG_XCHG: u32 = 0xD157_0001;
const TAG_SWAP: u32 = 0xD157_0002;
/// Base tag of the chunked overlapped exchange; chunk `i` travels as
/// `TAG_OVL + i`.
const TAG_OVL: u32 = 0xD157_0100;

/// Chunks an overlapped half-buffer exchange is split into.
pub(crate) const OVERLAP_CHUNKS: usize = 8;

/// Bytes on the wire for a C64 buffer (interleaved f64 pairs).
const C64_BYTES: u64 = 16;

/// One rank's slice of a distributed state vector.
///
/// The slice lives in [`AlignedAmps`] storage so the rank-local kernel
/// sweeps run on the same cache-line-aligned buffers as the serial
/// engine (the SIMD backends assert this in debug builds).
///
/// An attached [`Tracer`] (see [`DistState::set_tracer`]) records every
/// communication phase — pair exchanges, controlled exchanges,
/// global–local swaps, and collectives — as exchange spans carrying the
/// wire volume and the global qubit involved, so E5's communication
/// accounting comes straight out of the trace instead of
/// subtract-the-empty-circuit arithmetic.
#[derive(Debug, Clone)]
pub struct DistState {
    part: Partition,
    rank: usize,
    amps: AlignedAmps,
    tracer: Option<Arc<Tracer>>,
    /// Reusable exchange scratch, shared by every phase (pair-exchange
    /// doubled buffers and swap outboxes) so a long circuit allocates
    /// once instead of once per phase. 64-byte aligned like `amps`.
    scratch: Option<AlignedAmps>,
}

/// Send a complex slice as interleaved f64 (C64 is repr(C) f64-pairs).
/// Transport failures surface as [`DistError::Exchange`] so the caller
/// can roll back instead of tearing the world down.
fn sendrecv_c64(
    comm: &mut Comm,
    peer: usize,
    tag: u32,
    data: &[C64],
) -> Result<Vec<C64>, DistError> {
    let raw = comm.try_sendrecv(peer, tag, as_f64_slice(data))?;
    Ok(raw.chunks_exact(2).map(|p| C64::new(p[0], p[1])).collect())
}

/// The value of global qubit `q`'s bit on `rank`.
#[inline]
fn global_bit_of(part: &Partition, rank: usize, q: u32) -> bool {
    (rank >> part.global_bit(q)) & 1 == 1
}

impl DistState {
    /// The |0…0⟩ state distributed over the communicator's world.
    pub fn zero(n_qubits: u32, comm: &Comm) -> DistState {
        let part = Partition::new(n_qubits, comm.size());
        let mut amps = AlignedAmps::zeroed(part.local_len());
        if comm.rank() == 0 {
            amps[0] = C64::real(1.0);
        }
        DistState { part, rank: comm.rank(), amps, tracer: None, scratch: None }
    }

    /// Slice a full state vector (every rank passes the same `full`).
    pub fn from_full(full: &StateVector, comm: &Comm) -> DistState {
        let part = Partition::new(full.n_qubits(), comm.size());
        let rank = comm.rank();
        let start = part.global_index(rank, 0);
        let amps = AlignedAmps::from_slice(&full.amplitudes()[start..start + part.local_len()]);
        DistState { part, rank, amps, tracer: None, scratch: None }
    }

    /// Attach (or detach) a tracer; subsequent communication phases are
    /// recorded as exchange spans stamped with this rank.
    pub fn set_tracer(&mut self, tracer: Option<Arc<Tracer>>) {
        self.tracer = tracer;
    }

    pub(crate) fn record_exchange(
        &self,
        phase: ExchangePhase,
        qubits: &[u32],
        amps_moved: u64,
        started: Option<Instant>,
    ) {
        if let (Some(_), Some(t0)) = (&self.tracer, started) {
            self.record_exchange_ns(phase, qubits, amps_moved, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Like [`DistState::record_exchange`], with the wall time supplied
    /// by the caller — the overlapped exchange records only its
    /// *exposed* nanoseconds, excluding the compute hidden in flight.
    pub(crate) fn record_exchange_ns(
        &self,
        phase: ExchangePhase,
        qubits: &[u32],
        amps_moved: u64,
        wall_ns: u64,
    ) {
        if let Some(t) = &self.tracer {
            t.record_exchange(0, phase, qubits, amps_moved, amps_moved * C64_BYTES, wall_ns);
        }
    }

    /// Grab the reusable exchange scratch (≥ `min_len` amplitudes),
    /// allocating only when the demand outgrows the buffer; return it
    /// with `self.scratch = Some(buf)` when done. Alignment matches the
    /// state buffer so kernel sweeps may run inside it.
    fn take_scratch(&mut self, min_len: usize) -> AlignedAmps {
        let buf = match self.scratch.take() {
            Some(b) if b.len() >= min_len => b,
            _ => AlignedAmps::zeroed(min_len),
        };
        debug_assert_eq!(buf.as_ptr() as usize % 64, 0, "exchange scratch must be 64-byte aligned");
        buf
    }

    /// The partition geometry.
    pub fn partition(&self) -> Partition {
        self.part
    }

    /// This rank's index in the world.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// This rank's amplitudes.
    pub fn local_amps(&self) -> &[C64] {
        &self.amps
    }

    /// Crate-internal mutable view for the resilient executor's
    /// rollback (restore a checkpointed shard in place).
    pub(crate) fn local_amps_mut(&mut self) -> &mut [C64] {
        &mut self.amps
    }

    /// Can `gate` run without communication under `part`? True for
    /// all-local gates, any diagonal gate (global bits are rank-wide
    /// constants), and controlled gates whose control is global but
    /// target local. The distributed planner's relocation rule is the
    /// complement of this predicate.
    pub(crate) fn is_comm_free(part: &Partition, gate: &Gate) -> bool {
        let qs = gate.qubits();
        if qs.iter().all(|&q| part.is_local(q)) {
            return true;
        }
        if gate.is_diagonal() {
            return true;
        }
        if let Some((c, t, _)) = gate.as_controlled() {
            if !part.is_local(c) && part.is_local(t) {
                return true;
            }
        }
        false
    }

    /// Apply one gate, communicating as needed.
    pub fn apply_gate(&mut self, comm: &mut Comm, gate: &Gate) -> Result<(), DistError> {
        if Self::is_comm_free(&self.part, gate) {
            return Self::apply_resident_slice(&self.part, self.rank, &mut self.amps, gate);
        }
        let vq = self.part.n_local();
        // Dense 1q on a global qubit: direct pair exchange, dispatching
        // the original gate variant at a virtual doubled-buffer axis so
        // the kernel (and its rounding) is the one the serial engine
        // would have run.
        if let Some((q, _)) = gate.as_single() {
            let virtual_gate = gate.remap(|_| vq);
            return self.pair_exchange_dispatch(
                comm,
                ExchangePhase::PairExchange,
                &[q],
                q,
                &virtual_gate,
            );
        }
        // Controlled dense gates get the cheap special cases.
        if let Some((c, t, m)) = gate.as_controlled() {
            let c_local = self.part.is_local(c);
            debug_assert!(!self.part.is_local(t), "comm-free controlled cases handled above");
            return if c_local {
                // Local control, global target: exchange, then run the
                // original controlled kernel against the virtual axis.
                let virtual_gate = gate.remap(|q| if q == t { vq } else { q });
                self.pair_exchange_dispatch(
                    comm,
                    ExchangePhase::CtrlExchange,
                    &[c, t],
                    t,
                    &virtual_gate,
                )
            } else if self.global_bit_value(c) {
                // Both global, control set here (and on the partner,
                // which differs only in the target bit): the control is
                // satisfied buffer-wide, so a dense 1q on the virtual
                // axis applies the same per-pair arithmetic the serial
                // controlled kernel would.
                self.pair_exchange_dispatch(
                    comm,
                    ExchangePhase::PairExchange,
                    &[t],
                    t,
                    &Gate::Unitary1(vq, m),
                )
            } else {
                // Partner has the same (clear) control bit and also
                // skips; no exchange needed.
                Ok(())
            };
        }
        // General fallback: relocate each global qubit to a free local
        // position, apply, relocate back.
        self.apply_via_remap(comm, gate)
    }

    /// Apply a communication-free gate (see [`DistState::is_comm_free`])
    /// to `amps` — the rank's full buffer, or one contiguous half of it
    /// during an overlapped exchange (legal whenever the gate does not
    /// touch the top local axis, because every kernel then acts
    /// independently within each half).
    fn apply_resident_slice(
        part: &Partition,
        rank: usize,
        amps: &mut [C64],
        gate: &Gate,
    ) -> Result<(), DistError> {
        let qs = gate.qubits();
        if qs.iter().all(|&q| part.is_local(q)) {
            apply_local(amps, gate);
            return Ok(());
        }
        if gate.is_diagonal() {
            return Self::apply_diagonal_with_globals(part, rank, amps, gate);
        }
        if let Some((c, t, m)) = gate.as_controlled() {
            if !part.is_local(c) && part.is_local(t) {
                // Global control: rank-constant predicate.
                if global_bit_of(part, rank, c) {
                    apply_local(amps, &Gate::Unitary1(t, m));
                }
                return Ok(());
            }
        }
        Err(DistError::internal(format!(
            "gate `{}` reached the resident path but needs communication",
            gate.name()
        )))
    }

    /// Apply a comm-free gate to a contiguous sub-range of the local
    /// buffer (the overlap engine's per-half application).
    pub(crate) fn apply_resident_on(
        &mut self,
        gate: &Gate,
        range: std::ops::Range<usize>,
    ) -> Result<(), DistError> {
        Self::apply_resident_slice(&self.part, self.rank, &mut self.amps[range], gate)
    }

    /// Run a whole circuit.
    pub fn apply_circuit(&mut self, comm: &mut Comm, circuit: &Circuit) -> Result<(), DistError> {
        if circuit.n_qubits() != self.part.n_qubits() {
            return Err(DistError::WidthMismatch {
                circuit: circuit.n_qubits(),
                state: self.part.n_qubits(),
            });
        }
        for g in circuit.gates() {
            self.apply_gate(comm, g)?;
        }
        Ok(())
    }

    /// The value of global qubit `q`'s bit on this rank.
    fn global_bit_value(&self, q: u32) -> bool {
        global_bit_of(&self.part, self.rank, q)
    }

    /// Dense gate touching global qubit `gq` by whole-buffer pair
    /// exchange: concatenate the two partner buffers into the scratch
    /// (this rank's half at index bit `vq = n_local` equal to its `gq`
    /// bit), dispatch `virtual_gate` — the original gate remapped onto
    /// `vq` — over the doubled buffer, and keep this rank's half.
    ///
    /// Routing through the ordinary kernel dispatch (instead of a
    /// hand-rolled row combine) makes the distributed arithmetic
    /// *bit-identical* to the serial engine: the same kernel variant
    /// runs with the same per-pair operation order, merely at a
    /// different stride.
    fn pair_exchange_dispatch(
        &mut self,
        comm: &mut Comm,
        phase: ExchangePhase,
        span_qubits: &[u32],
        gq: u32,
        virtual_gate: &Gate,
    ) -> Result<(), DistError> {
        let t0 = self.tracer.as_ref().map(|_| Instant::now());
        let partner = self.part.partner(self.rank, gq);
        let theirs = sendrecv_c64(comm, partner, TAG_XCHG, &self.amps);
        let l = self.amps.len();
        let mut buf = self.take_scratch(2 * l);
        let theirs = match theirs {
            Ok(t) => t,
            Err(e) => {
                self.scratch = Some(buf);
                return Err(e);
            }
        };
        let r = usize::from(self.global_bit_value(gq));
        buf[r * l..(r + 1) * l].copy_from_slice(&self.amps);
        buf[(1 - r) * l..(2 - r) * l].copy_from_slice(&theirs);
        apply_local(&mut buf[..2 * l], virtual_gate);
        self.amps.copy_from_slice(&buf[r * l..(r + 1) * l]);
        self.scratch = Some(buf);
        self.record_exchange(phase, span_qubits, l as u64, t0);
        Ok(())
    }

    /// Diagonal gate with ≥1 global qubit: every factor involving a
    /// global bit is a rank-wide constant. Operates on a slice so the
    /// overlap engine can run it per half (enumeration offsets only
    /// affect the top local bit, which a half-applied gate never uses).
    fn apply_diagonal_with_globals(
        part: &Partition,
        rank: usize,
        amps: &mut [C64],
        gate: &Gate,
    ) -> Result<(), DistError> {
        // Obtain the diagonal entries from the dense forms.
        match gate.arity() {
            1 => {
                let (q, m) = gate.as_single().ok_or_else(|| {
                    DistError::internal(format!(
                        "1-qubit diagonal gate `{}` has no dense 1q form",
                        gate.name()
                    ))
                })?;
                let d = if global_bit_of(part, rank, q) { m.m[1][1] } else { m.m[0][0] };
                for a in amps.iter_mut() {
                    *a *= d;
                }
            }
            2 => {
                let (h, l, m) = gate.as_two().ok_or_else(|| {
                    DistError::internal(format!(
                        "2-qubit diagonal gate `{}` has no dense 2q form",
                        gate.name()
                    ))
                })?;
                let d = [m.m[0][0], m.m[1][1], m.m[2][2], m.m[3][3]];
                let h_local = part.is_local(h);
                let l_local = part.is_local(l);
                match (h_local, l_local) {
                    (false, false) => {
                        let idx = ((global_bit_of(part, rank, h) as usize) << 1)
                            | global_bit_of(part, rank, l) as usize;
                        for a in amps.iter_mut() {
                            *a *= d[idx];
                        }
                    }
                    (false, true) => {
                        let hbit = global_bit_of(part, rank, h) as usize;
                        let lmask = 1usize << l;
                        for (x, a) in amps.iter_mut().enumerate() {
                            let idx = (hbit << 1) | usize::from(x & lmask != 0);
                            *a *= d[idx];
                        }
                    }
                    (true, false) => {
                        let lbit = global_bit_of(part, rank, l) as usize;
                        let hmask = 1usize << h;
                        for (x, a) in amps.iter_mut().enumerate() {
                            let idx = ((usize::from(x & hmask != 0)) << 1) | lbit;
                            *a *= d[idx];
                        }
                    }
                    (true, true) => {
                        return Err(DistError::internal(format!(
                            "diagonal gate `{}` with two local qubits reached the global path",
                            gate.name()
                        )))
                    }
                }
            }
            arity => {
                return Err(DistError::UnsupportedGate {
                    gate: gate.name().to_string(),
                    reason: format!(
                        "diagonal gates of arity {arity} are not in the distributed gate set"
                    ),
                })
            }
        }
        Ok(())
    }

    /// Swap global qubit `gq` with local qubit `lq` (a physical data
    /// exchange of half the local buffer), returning nothing; qubit
    /// *labels* are restored by the caller swapping back after use.
    fn swap_global_local(&mut self, comm: &mut Comm, gq: u32, lq: u32) -> Result<(), DistError> {
        debug_assert!(!self.part.is_local(gq) && self.part.is_local(lq));
        let t0 = self.tracer.as_ref().map(|_| Instant::now());
        let r = usize::from(self.global_bit_value(gq));
        let half = self.amps.len() / 2;
        // Ship amplitudes whose lq bit ≠ my global bit, gathered into the
        // reusable scratch (one allocation per run, not per phase).
        let want_bit = 1 - r;
        let mut outbox = self.take_scratch(half);
        for j in 0..half {
            let x = insert_zero_bit(j, lq) | (want_bit << lq);
            outbox[j] = self.amps[x];
        }
        let partner = self.part.partner(self.rank, gq);
        let inbox = sendrecv_c64(comm, partner, TAG_SWAP, &outbox[..half]);
        self.scratch = Some(outbox);
        for (j, v) in inbox?.into_iter().enumerate() {
            let x = insert_zero_bit(j, lq) | (want_bit << lq);
            self.amps[x] = v;
        }
        self.record_exchange(ExchangePhase::GlobalSwap, &[gq, lq], half as u64, t0);
        Ok(())
    }

    /// Overlapped global–local swap on the *top* local axis
    /// `lq = n_local − 1`: the outgoing contiguous half is sent in
    /// chunks through the nonblocking transport while `resident` —
    /// comm-free gates scheduled after this swap that do not touch
    /// `lq` — run on both halves (the outgoing half before departure,
    /// the resident half during flight). Bit-identical to
    /// `swap_global_local(gq, lq)` followed by full-buffer application
    /// of `resident`, because gates avoiding `lq` act independently
    /// within each half.
    ///
    /// The recorded [`ExchangePhase::OverlapSwap`] span carries only the
    /// *exposed* wall time (chunk posting + drain), not the hidden
    /// keep-half compute — the separation e5-style accounting needs.
    pub(crate) fn swap_top_overlapped(
        &mut self,
        comm: &mut Comm,
        gq: u32,
        resident: &[Gate],
        chunks: usize,
    ) -> Result<(), DistError> {
        let lq = self.part.n_local() - 1;
        debug_assert!(!self.part.is_local(gq));
        debug_assert!(resident.iter().all(|g| !g.qubits().contains(&lq)));
        let half = self.amps.len() / 2;
        let r = usize::from(self.global_bit_value(gq));
        let want = 1 - r;
        let ship = want * half..(want + 1) * half;
        let keep = (1 - want) * half..(2 - want) * half;
        for g in resident {
            self.apply_resident_on(g, ship.clone())?;
        }
        let partner = self.part.partner(self.rank, gq);
        let t0 = Instant::now();
        {
            let out = &self.amps[ship.clone()];
            let k = mpi_sim::chunk_count(out.len(), chunks);
            let mut off = 0;
            for i in 0..k {
                let len = out.len() / k + usize::from(i < out.len() % k);
                comm.try_send(partner, TAG_OVL + i as u32, as_f64_slice(&out[off..off + len]))?;
                off += len;
            }
        }
        let reqs = comm.irecv_chunked(partner, TAG_OVL, half, chunks);
        let mut exposed = t0.elapsed();
        for g in resident {
            self.apply_resident_on(g, keep.clone())?;
        }
        let t1 = Instant::now();
        let parts = comm.try_waitall::<f64>(reqs)?;
        let mut w = ship.start;
        for (_, data) in parts {
            for p in data.chunks_exact(2) {
                self.amps[w] = C64::new(p[0], p[1]);
                w += 1;
            }
        }
        exposed += t1.elapsed();
        if w != ship.end {
            return Err(DistError::internal(format!(
                "overlapped swap reassembled {} of {half} amplitudes",
                w - ship.start
            )));
        }
        self.record_exchange_ns(
            ExchangePhase::OverlapSwap,
            &[gq, lq],
            half as u64,
            exposed.as_nanos() as u64,
        );
        Ok(())
    }

    /// Apply a gate with global qubits by temporarily relocating each
    /// global qubit onto a free local qubit.
    fn apply_via_remap(&mut self, comm: &mut Comm, gate: &Gate) -> Result<(), DistError> {
        let qs = gate.qubits();
        let globals: Vec<u32> = qs.iter().copied().filter(|&q| !self.part.is_local(q)).collect();
        // Free local qubits: *highest* indices not used by the gate.
        // High victims keep the remapped gate's minimum axis at or above
        // the serial gate's, so both runs take the same SIMD-vs-scalar
        // kernel path and stay bit-identical.
        let mut free: Vec<u32> = (0..self.part.n_local())
            .rev()
            .filter(|q| !qs.contains(q))
            .take(globals.len())
            .collect();
        if free.len() != globals.len() {
            return Err(DistError::UnsupportedGate {
                gate: gate.name().to_string(),
                reason: format!(
                    "not enough free local qubits to relocate {} global qubits \
                     ({} local qubits per rank)",
                    globals.len(),
                    self.part.n_local()
                ),
            });
        }
        for (&g, &l) in globals.iter().zip(&free) {
            self.swap_global_local(comm, g, l)?;
        }
        let remapped = gate.remap(|q| {
            if let Some(pos) = globals.iter().position(|&g| g == q) {
                free[pos]
            } else {
                q
            }
        });
        apply_local(&mut self.amps, &remapped);
        // Swap back in reverse order.
        free.reverse();
        let mut globals_rev = globals.clone();
        globals_rev.reverse();
        for (&g, &l) in globals_rev.iter().zip(&free) {
            self.swap_global_local(comm, g, l)?;
        }
        Ok(())
    }

    /// Crate-internal: swap a global physical axis with a local one (the
    /// remapping engine drives this directly).
    pub(crate) fn swap_physical(
        &mut self,
        comm: &mut Comm,
        gq: u32,
        lq: u32,
    ) -> Result<(), DistError> {
        self.swap_global_local(comm, gq, lq)
    }

    /// Crate-internal: swap any two physical axes. Local–local is a
    /// rank-local permutation; global–local is one half-buffer exchange;
    /// global–global decomposes into three global–local swaps through a
    /// temporary local axis ((a t)(b t)(a t) = (a b)).
    pub(crate) fn swap_physical_any(
        &mut self,
        comm: &mut Comm,
        a: u32,
        b: u32,
    ) -> Result<(), DistError> {
        if a == b {
            return Ok(());
        }
        match (self.part.is_local(a), self.part.is_local(b)) {
            (true, true) => {
                qcs_core::kernels::scalar::apply_swap(&mut self.amps, a, b);
                Ok(())
            }
            (false, true) => self.swap_global_local(comm, a, b),
            (true, false) => self.swap_global_local(comm, b, a),
            (false, false) => {
                let t = 0u32; // any local axis works as scratch
                self.swap_global_local(comm, a, t)?;
                self.swap_global_local(comm, b, t)?;
                self.swap_global_local(comm, a, t)
            }
        }
    }

    /// ⟨ψ|ψ⟩ across all ranks.
    pub fn norm_sqr(&self, comm: &mut Comm) -> f64 {
        let local: f64 = self.amps.iter().map(|a| a.norm_sqr()).sum();
        comm.allreduce_scalar(mpi_sim::collectives::ReduceOp::Sum, local)
    }

    /// Probability that qubit `q` reads 1, across all ranks.
    pub fn prob_qubit_one(&self, comm: &mut Comm, q: u32) -> f64 {
        let local: f64 = if self.part.is_local(q) {
            let mask = 1usize << q;
            self.amps
                .iter()
                .enumerate()
                .filter(|(x, _)| x & mask != 0)
                .map(|(_, a)| a.norm_sqr())
                .sum()
        } else if self.global_bit_value(q) {
            self.amps.iter().map(|a| a.norm_sqr()).sum()
        } else {
            0.0
        };
        comm.allreduce_scalar(mpi_sim::collectives::ReduceOp::Sum, local)
    }

    /// Projective measurement of qubit `q`, collapsing the distributed
    /// state. All ranks return the same outcome.
    ///
    /// The Born draw happens on rank 0 with `u ∈ [0,1)` supplied by the
    /// caller (so the caller controls the randomness source); the
    /// decision is broadcast, and each rank collapses its slice locally.
    pub fn measure_qubit(&mut self, comm: &mut Comm, q: u32, u: f64) -> u8 {
        let p1 = self.prob_qubit_one(comm, q);
        // Rank 0 decides; everyone must agree even if `u` differs between
        // ranks (caller bug) — broadcast the decision.
        let mut decision = vec![u8::from(u < p1)];
        comm.bcast(0, &mut decision);
        let outcome = decision[0];
        self.collapse(comm, q, outcome);
        outcome
    }

    /// Project qubit `q` onto `outcome` and renormalize across ranks.
    pub fn collapse(&mut self, comm: &mut Comm, q: u32, outcome: u8) {
        let keep_set = outcome == 1;
        let p1 = self.prob_qubit_one(comm, q);
        let p = if keep_set { p1 } else { 1.0 - p1 };
        assert!(p > 1e-14, "collapsing qubit {q} onto probability-{p} outcome {outcome}");
        let scale = 1.0 / p.sqrt();
        if self.part.is_local(q) {
            let bit = 1usize << q;
            for (x, a) in self.amps.iter_mut().enumerate() {
                if ((x & bit) != 0) == keep_set {
                    *a = a.scale(scale);
                } else {
                    *a = C64::default();
                }
            }
        } else if self.global_bit_value(q) == keep_set {
            for a in &mut self.amps {
                *a = a.scale(scale);
            }
        } else {
            for a in &mut self.amps {
                *a = C64::default();
            }
        }
    }

    /// Multi-shot sampling of the full register without collapsing the
    /// state and without gathering it: draws are routed to the owning
    /// rank by a two-level inverse transform (rank masses, then local
    /// CDF). All ranks receive the complete `(basis_index, count)` list.
    ///
    /// `us` supplies one uniform draw in `[0,1)` per shot — every rank
    /// must pass identical values (derive them from a shared seed).
    pub fn sample_counts(&self, comm: &mut Comm, us: &[f64]) -> Vec<(usize, u64)> {
        // Rank-level masses, shared with everyone.
        let local_mass: f64 = self.amps.iter().map(|a| a.norm_sqr()).sum();
        let masses = comm.allgather(&[local_mass]);
        let mut rank_cdf = Vec::with_capacity(masses.len());
        let mut acc = 0.0;
        for m in &masses {
            acc += m;
            rank_cdf.push(acc);
        }
        let total = acc;
        // Local CDF over this rank's slice.
        let mut local_cdf = Vec::with_capacity(self.amps.len());
        let mut lacc = 0.0;
        for a in &self.amps {
            lacc += a.norm_sqr();
            local_cdf.push(lacc);
        }
        // Every rank resolves every shot deterministically; only the
        // owner resolves the local index, then contributes it via an
        // element-wise allreduce (index encoded as f64 — exact for
        // indices < 2^53).
        let mut mine = vec![0.0f64; us.len()];
        let my_base = if comm.rank() == 0 { 0.0 } else { rank_cdf[comm.rank() - 1] };
        for (shot, &u) in us.iter().enumerate() {
            let x = u * total;
            let owner = rank_cdf.partition_point(|&c| c <= x).min(masses.len() - 1);
            if owner == comm.rank() {
                let local_x = x - my_base;
                let idx = local_cdf.partition_point(|&c| c <= local_x).min(self.amps.len() - 1);
                mine[shot] = self.part.global_index(self.rank, idx) as f64;
            }
        }
        let resolved = comm.allreduce(mpi_sim::collectives::ReduceOp::Sum, &mine);
        let mut counts = std::collections::BTreeMap::new();
        for r in resolved {
            *counts.entry(r as usize).or_insert(0u64) += 1;
        }
        counts.into_iter().collect()
    }

    /// Reassemble the full state on every rank (allgather).
    pub fn allgather_full(&self, comm: &mut Comm) -> StateVector {
        let t0 = self.tracer.as_ref().map(|_| Instant::now());
        let all_f64 = comm.allgather(as_f64_slice(&self.amps));
        let amps: Vec<C64> = all_f64.chunks_exact(2).map(|p| C64::new(p[0], p[1])).collect();
        self.record_exchange(ExchangePhase::Collective, &[], self.amps.len() as u64, t0);
        StateVector::from_amplitudes(&amps)
    }
}

/// Convenience harness: run `circuit` from |0…0⟩ on `n_ranks` ranks and
/// return the reassembled state plus per-rank communication statistics.
///
/// The scheduling policy is read from `QCS_DIST_PLAN`
/// (`naive|reorder|overlap`, default naive); use
/// [`crate::plan::run_distributed_planned`] to pin a kind explicitly.
/// All kinds produce bit-identical states.
///
/// Engine errors are deterministic and symmetric across ranks (they
/// depend only on the circuit and the partition geometry), so every
/// rank returns the same `Err` and the world tears down cleanly.
pub fn run_distributed(
    circuit: &Circuit,
    n_ranks: usize,
) -> Result<(StateVector, Vec<mpi_sim::CommStats>), DistError> {
    crate::plan::run_distributed_planned(circuit, n_ranks, crate::plan::DistPlanKind::from_env())
}

/// Like [`run_distributed`], but every rank records an exchange span per
/// communication phase (phase kind, partner qubits, amplitudes moved,
/// bytes on the wire, wall time). Returns one [`Trace`] per rank; when
/// `telemetry.trace_path` is set the traces are also written there as
/// JSONL, one run block per rank. The scheduling policy follows
/// `QCS_DIST_PLAN` like [`run_distributed`].
pub fn run_distributed_traced(
    circuit: &Circuit,
    n_ranks: usize,
    telemetry: &TelemetryConfig,
) -> Result<(StateVector, Vec<mpi_sim::CommStats>, Vec<Trace>), DistError> {
    crate::plan::run_distributed_planned_traced(
        circuit,
        n_ranks,
        crate::plan::DistPlanKind::from_env(),
        telemetry,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{run_distributed_planned, run_distributed_planned_traced, DistPlanKind};
    use mpi_sim::World;
    use qcs_core::library;
    use qcs_core::sim::Simulator;
    use qcs_core::telemetry::SpanKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const EPS: f64 = 1e-10;

    fn serial_reference(circuit: &Circuit) -> StateVector {
        let mut s = StateVector::zero(circuit.n_qubits());
        Simulator::new().run(circuit, &mut s).unwrap();
        s
    }

    fn check_distributed(circuit: &Circuit, n_ranks: usize) {
        let reference = serial_reference(circuit);
        let (dist, _) = run_distributed(circuit, n_ranks).unwrap();
        assert!(
            dist.approx_eq(&reference, EPS),
            "ranks={n_ranks}: max diff {}",
            dist.max_abs_diff(&reference)
        );
    }

    #[test]
    fn ghz_distributed_matches_serial() {
        for ranks in [1usize, 2, 4, 8] {
            check_distributed(&library::ghz(8), ranks);
        }
    }

    #[test]
    fn qft_distributed_matches_serial() {
        for ranks in [2usize, 4] {
            check_distributed(&library::qft(7), ranks);
        }
    }

    #[test]
    fn random_circuits_distributed_match_serial() {
        for seed in 0..3u64 {
            for ranks in [2usize, 4, 8] {
                check_distributed(&library::random_circuit(7, 8, seed), ranks);
            }
        }
    }

    #[test]
    fn quantum_volume_distributed_matches_serial() {
        check_distributed(&library::quantum_volume(6, 5), 4);
    }

    #[test]
    fn trotter_distributed_matches_serial() {
        check_distributed(&library::trotter_ising(7, 3, 1.0, 0.6, 0.1), 4);
    }

    #[test]
    fn global_qubit_dense_gates_exchange_buffers() {
        // One H on the top qubit of an 8-qubit state over 4 ranks must
        // exchange exactly one local buffer per rank.
        let mut c = Circuit::new(8);
        c.h(7); // global for 4 ranks (local = 6 qubits)
        let (_, stats) = run_distributed_planned(&c, 4, DistPlanKind::Naive).unwrap();
        let local_bytes = (1u64 << 6) * 16;
        for s in &stats {
            // allgather at the end also communicates; subtract by checking
            // the exchange happened: at least one message of local_bytes.
            assert!(
                s.bytes_sent >= local_bytes,
                "expected ≥ {local_bytes} exchanged, saw {}",
                s.bytes_sent
            );
        }
    }

    #[test]
    fn local_gates_need_no_exchange() {
        // All gates on low qubits: the only traffic is the final gather.
        let mut with_gates = Circuit::new(8);
        with_gates.h(0).h(1).cx(0, 1).rz(2, 0.3);
        let empty = Circuit::new(8);
        let (_, stats_gates) = run_distributed(&with_gates, 4).unwrap();
        let (_, stats_empty) = run_distributed(&empty, 4).unwrap();
        for (a, b) in stats_gates.iter().zip(&stats_empty) {
            assert_eq!(a.bytes_sent, b.bytes_sent, "local gates must add zero communication");
        }
    }

    #[test]
    fn diagonal_global_gates_need_no_exchange() {
        let mut diag = Circuit::new(8);
        diag.rz(7, 0.9).cz(6, 7).cp(7, 0, 0.4).rzz(6, 7, 0.2).t(7);
        let empty = Circuit::new(8);
        let (_, a) = run_distributed(&diag, 4).unwrap();
        let (_, b) = run_distributed(&empty, 4).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.bytes_sent, y.bytes_sent, "diagonal gates are communication-free");
        }
        // And they are also *correct*.
        check_distributed(&diag, 4);
    }

    #[test]
    fn global_control_cx_needs_no_exchange() {
        let mut c = Circuit::new(8);
        c.h(0).cx(7, 0); // control global, target local
        let mut h_only = Circuit::new(8);
        h_only.h(0);
        let (_, a) = run_distributed(&c, 4).unwrap();
        let (_, b) = run_distributed(&h_only, 4).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.bytes_sent, y.bytes_sent);
        }
        check_distributed(&c, 4);
    }

    #[test]
    fn traced_run_matches_untraced_and_accounts_exchange_volume() {
        // One H on a global qubit over 4 ranks: each rank exchanges its
        // whole local buffer once (pair exchange) and once more for the
        // final allgather. The tracer must see exactly those spans with
        // the right amplitude counts — this is the volume accounting the
        // communication experiments read off the trace.
        let mut c = Circuit::new(8);
        c.h(7);
        let reference = serial_reference(&c);
        let cfg = TelemetryConfig::on();
        let (state, _, traces) =
            run_distributed_planned_traced(&c, 4, DistPlanKind::Naive, &cfg).unwrap();
        assert!(state.approx_eq(&reference, EPS));
        assert_eq!(traces.len(), 4);
        let local_amps = 1u64 << 6;
        for (rank, trace) in traces.iter().enumerate() {
            assert_eq!(trace.meta.strategy, "dist:4");
            let pair: Vec<_> = trace
                .spans
                .iter()
                .filter(|s| s.kind == SpanKind::Exchange(ExchangePhase::PairExchange))
                .collect();
            let coll: Vec<_> = trace
                .spans
                .iter()
                .filter(|s| s.kind == SpanKind::Exchange(ExchangePhase::Collective))
                .collect();
            assert_eq!(pair.len(), 1, "rank {rank}: one pair exchange for the global H");
            assert_eq!(coll.len(), 1, "rank {rank}: one final allgather");
            assert_eq!(pair[0].amps, local_amps);
            assert_eq!(pair[0].bytes, local_amps * C64_BYTES);
            assert_eq!(pair[0].qubits, vec![7]);
            assert_eq!(pair[0].rank, rank as i32);
            assert_eq!(pair[0].bottleneck, "network");
        }
    }

    #[test]
    fn traced_remap_records_global_swaps() {
        // A dense 2q gate on two global qubits forces remapping: the
        // engine swaps each global qubit with a local one (half-buffer
        // exchanges), applies locally, then swaps back.
        let mut c = Circuit::new(8);
        c.h(6).h(7).iswap(6, 7);
        let (state, _, traces) =
            run_distributed_planned_traced(&c, 4, DistPlanKind::Naive, &TelemetryConfig::on())
                .unwrap();
        assert!(state.approx_eq(&serial_reference(&c), EPS));
        let swaps: usize = traces
            .iter()
            .flat_map(|t| &t.spans)
            .filter(|s| s.kind == SpanKind::Exchange(ExchangePhase::GlobalSwap))
            .count();
        assert!(swaps > 0, "remapped dense gate must record global-swap spans");
        for t in &traces {
            for s in &t.spans {
                if s.kind == SpanKind::Exchange(ExchangePhase::GlobalSwap) {
                    assert_eq!(s.amps, 1u64 << 5, "half the local buffer moves per swap");
                }
            }
        }
    }

    #[test]
    fn traced_runs_write_one_jsonl_block_per_rank() {
        let dir = std::env::temp_dir().join("qcs_dist_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("trace_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut c = Circuit::new(6);
        c.h(5).cx(5, 0);
        let cfg = TelemetryConfig::on().with_output(&path);
        let (_, _, traces) = run_distributed_traced(&c, 2, &cfg).unwrap();
        let read = qcs_core::telemetry::sink::read_jsonl(&path).unwrap();
        assert_eq!(read.len(), 2, "one run block per rank");
        for (mem, disk) in traces.iter().zip(&read) {
            assert_eq!(mem.meta, disk.meta);
            assert_eq!(mem.spans.len(), disk.spans.len());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dense_two_qubit_on_globals_via_remap() {
        let mut c = Circuit::new(8);
        c.h(6).h(7).iswap(6, 7).rxx(5, 7, 0.7).swap(6, 2);
        check_distributed(&c, 4);
        check_distributed(&c, 8);
    }

    #[test]
    fn toffoli_with_global_qubits() {
        let mut c = Circuit::new(8);
        c.h(7).h(6).h(0).ccx(7, 6, 0).ccx(0, 7, 6);
        check_distributed(&c, 4);
    }

    #[test]
    fn from_full_roundtrip() {
        let mut rng = StdRng::seed_from_u64(5);
        let full = StateVector::random(8, &mut rng);
        let full2 = full.clone();
        let gathered = World::run(4, move |comm| {
            let st = DistState::from_full(&full2, comm);
            st.allgather_full(comm)
        });
        for g in gathered {
            assert!(g.approx_eq(&full, 0.0));
        }
    }

    #[test]
    fn norm_and_probabilities_across_ranks() {
        let c = library::ghz(8);
        let reference = serial_reference(&c);
        let p1_ref: Vec<f64> = (0..8).map(|q| reference.prob_qubit_one(q)).collect();
        let results = World::run(4, |comm| {
            let mut st = DistState::zero(8, comm);
            st.apply_circuit(comm, &library::ghz(8)).unwrap();
            let norm = st.norm_sqr(comm);
            let p1: Vec<f64> = (0..8).map(|q| st.prob_qubit_one(comm, q)).collect();
            (norm, p1)
        });
        for (norm, p1) in results {
            assert!((norm - 1.0).abs() < EPS);
            for (a, b) in p1.iter().zip(&p1_ref) {
                assert!((a - b).abs() < EPS);
            }
        }
    }

    #[test]
    fn distributed_measurement_collapses_ghz() {
        // Measuring any qubit of a GHZ state pins every other qubit; both
        // local (q=0) and global (q=7 on 4 ranks) measurements must work.
        for q in [0u32, 7] {
            for forced in [0.0, 0.999_999] {
                let results = World::run(4, move |comm| {
                    let mut st = DistState::zero(8, comm);
                    st.apply_circuit(comm, &library::ghz(8)).unwrap();
                    let outcome = st.measure_qubit(comm, q, forced);
                    let norm = st.norm_sqr(comm);
                    let p_other = st.prob_qubit_one(comm, (q + 3) % 8);
                    (outcome, norm, p_other)
                });
                let expect = u8::from(forced < 0.5); // P(1) = 0.5 exactly
                for (outcome, norm, p_other) in results {
                    assert_eq!(outcome, expect, "q={q} forced={forced}");
                    assert!((norm - 1.0).abs() < EPS);
                    assert!((p_other - outcome as f64).abs() < EPS, "GHZ correlation");
                }
            }
        }
    }

    #[test]
    fn distributed_collapse_matches_serial() {
        let c = library::random_circuit(8, 6, 15);
        let mut serial = serial_reference(&c);
        qcs_core::measure::collapse(&mut serial, 5, 1);
        let serial_clone = serial.clone();
        let c2 = c.clone();
        let results = World::run(4, move |comm| {
            let mut st = DistState::zero(8, comm);
            st.apply_circuit(comm, &c2).unwrap();
            st.collapse(comm, 5, 1);
            st.allgather_full(comm)
        });
        for r in results {
            assert!(r.approx_eq(&serial_clone, EPS));
        }
    }

    #[test]
    fn distributed_sampling_matches_serial_sampler() {
        use rand::Rng;
        // Same uniform draws through the serial inverse-transform sampler
        // and the distributed one must yield identical samples.
        let c = library::random_circuit(8, 6, 44);
        let serial = serial_reference(&c);
        let mut rng = StdRng::seed_from_u64(99);
        let us: Vec<f64> = (0..200).map(|_| rng.gen_range(0.0..1.0)).collect();
        // Serial reference sampler on the same draws.
        let mut cdf = Vec::new();
        let mut acc = 0.0;
        for a in serial.amplitudes() {
            acc += a.norm_sqr();
            cdf.push(acc);
        }
        let mut expected = std::collections::BTreeMap::new();
        for &u in &us {
            let x = u * acc;
            let idx = cdf.partition_point(|&cv| cv <= x).min(cdf.len() - 1);
            *expected.entry(idx).or_insert(0u64) += 1;
        }
        let expected: Vec<(usize, u64)> = expected.into_iter().collect();

        for ranks in [2usize, 4] {
            let c2 = c.clone();
            let us2 = us.clone();
            let results = World::run(ranks, move |comm| {
                let mut st = DistState::zero(8, comm);
                st.apply_circuit(comm, &c2).unwrap();
                st.sample_counts(comm, &us2)
            });
            for r in results {
                assert_eq!(r, expected, "ranks={ranks}");
            }
        }
    }

    #[test]
    fn distributed_sampling_of_basis_state() {
        let results = World::run(4, |comm| {
            let mut st = DistState::zero(8, comm);
            st.apply_circuit(comm, &{
                let mut c = Circuit::new(8);
                c.x(2).x(7);
                c
            })
            .unwrap();
            st.sample_counts(comm, &[0.1, 0.5, 0.9])
        });
        for r in results {
            assert_eq!(r, vec![(0b10000100, 3)]);
        }
    }

    #[test]
    fn grover_distributed() {
        let c = library::grover(6, 37);
        let (dist, _) = run_distributed(&c, 4).unwrap();
        let argmax =
            (0..64).max_by(|&a, &b| dist.probability(a).total_cmp(&dist.probability(b))).unwrap();
        assert_eq!(argmax, 37);
    }
}
