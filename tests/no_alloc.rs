//! Proof that the specialized fused hot loop never touches the heap.
//!
//! The seed regression that motivated the specialized kernels was partly
//! allocator traffic: the generic fused path built scratch vectors per
//! block application. This binary installs a counting global allocator
//! and asserts that [`PreparedFused::apply`] performs **zero**
//! allocations for every structure class at k ≤ 5 — the entire cost of
//! lowering (sorting qubits, precomputing offsets) is paid once in
//! `PreparedFused::new`, outside the sweep.
//!
//! Everything lives in a single `#[test]` so no concurrent test can
//! allocate while the counter is armed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use a64fx_qcs::core::circuit::Circuit;
use a64fx_qcs::core::fusion::fuse;
use a64fx_qcs::core::kernels::fused::PreparedFused;
use a64fx_qcs::core::kernels::simd;
use a64fx_qcs::core::state::StateVector;

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static ARMED: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// One circuit per structure class, wide enough to fuse up to k = 5.
fn class_circuits() -> Vec<(&'static str, Circuit)> {
    let mut diag = Circuit::new(5);
    diag.rz(0, 0.4).t(1).cp(0, 1, 0.9).cz(1, 2).rzz(2, 3, 0.3).cp(3, 4, 0.7).s(4);
    let mut perm = Circuit::new(5);
    perm.x(0).cx(0, 2).swap(1, 2).ccx(0, 1, 3).y(4).cx(3, 4);
    let mut sparse = Circuit::new(5);
    sparse.ccx(0, 1, 2).rx(2, 0.7).ccx(2, 3, 4).rz(4, 0.2);
    let mut dense = Circuit::new(5);
    dense.h(0).h(1).h(2).h(3).h(4).cx(0, 1).cx(1, 2).cx(2, 3).cx(3, 4);
    dense.h(0).h(1).h(2).h(3).h(4);
    vec![("diag", diag), ("perm", perm), ("sparse", sparse), ("dense", dense)]
}

#[test]
fn fused_hot_loop_is_allocation_free() {
    let mut backends: Vec<&'static simd::KernelBackend> =
        vec![simd::backend_for(simd::BackendChoice::Scalar)];
    if let Some(native) = simd::native() {
        backends.push(native);
    }
    let mut state = StateVector::plus(10);

    for (name, circuit) in class_circuits() {
        // Generated circuits include 3-qubit gates, so k starts at 3.
        for max_k in 3..=5u32 {
            let plan = fuse(&circuit, max_k);
            let preps: Vec<PreparedFused<'_>> = plan.iter().map(PreparedFused::new).collect();
            for be in &backends {
                // Warm-up pass: let any lazy one-time initialization
                // (backend detection, allocator pools) happen first.
                let amps = state.amplitudes_mut();
                for prep in &preps {
                    prep.apply(be, amps);
                }

                ALLOCS.store(0, Ordering::SeqCst);
                ARMED.store(true, Ordering::SeqCst);
                for prep in &preps {
                    prep.apply(be, amps);
                }
                ARMED.store(false, Ordering::SeqCst);

                let count = ALLOCS.load(Ordering::SeqCst);
                assert_eq!(
                    count, 0,
                    "{name} k={max_k} be={}: {count} heap allocations in the fused hot loop",
                    be.name
                );
            }
        }
    }
}
