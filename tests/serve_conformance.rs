//! Service conformance: the job server must be a transparent front on
//! the batch engine.
//!
//! Every test talks to a real `Server` over a loopback TCP socket —
//! nothing is mocked below the HTTP layer — and the headline matrix
//! compares the served counts and expectation values against a direct
//! in-process `BatchSimulator` run at tolerance **zero**: counts must
//! match exactly and expectation values must match to the bit.

use a64fx_qcs::core::batch::BatchSimulator;
use a64fx_qcs::core::circuit::{Circuit, Gate};
use a64fx_qcs::core::config::SimConfig;
use a64fx_qcs::core::expectation::{Pauli, PauliString};
use a64fx_qcs::core::kernels::simd::BackendChoice;
use a64fx_qcs::core::measure::sample_counts;
use a64fx_qcs::core::sim::{Simulator, Strategy};
use a64fx_qcs::core::state::StateVector;
use a64fx_qcs::core::variational::ParamCircuit;
use a64fx_qcs::serve::client::{http_request, submit_job, wait_for_job};
use a64fx_qcs::serve::json::{parse, Value};
use a64fx_qcs::serve::{ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: u32 = 6;
const SHOTS: u64 = 200;
const SEED: u64 = 11;

/// The circuit every matrix cell submits: an entangling layer plus
/// rotations so no amplitude is trivially 0 or 1.
fn reference_circuit() -> Circuit {
    let mut c = Circuit::new(N);
    for q in 0..N {
        c.push(Gate::H(q));
    }
    c.push(Gate::Cx(0, 1));
    c.push(Gate::Cx(2, 3));
    c.push(Gate::Cx(4, 5));
    c.push(Gate::Rz(1, 0.3));
    c.push(Gate::Ry(3, -0.7));
    c.push(Gate::Rx(5, 1.1));
    c.push(Gate::Cz(1, 4));
    c.push(Gate::T(0));
    c
}

/// JSON gate list matching [`reference_circuit`] exactly.
fn reference_circuit_json() -> &'static str {
    r#"[
        {"gate":"h","q":[0]},{"gate":"h","q":[1]},{"gate":"h","q":[2]},
        {"gate":"h","q":[3]},{"gate":"h","q":[4]},{"gate":"h","q":[5]},
        {"gate":"cx","q":[0,1]},{"gate":"cx","q":[2,3]},{"gate":"cx","q":[4,5]},
        {"gate":"rz","q":[1],"theta":0.3},
        {"gate":"ry","q":[3],"theta":-0.7},
        {"gate":"rx","q":[5],"theta":1.1},
        {"gate":"cz","q":[1,4]},
        {"gate":"t","q":[0]}
    ]"#
}

fn submit_body(tenant: &str, strategy: &str, backend: &str, seed: u64) -> String {
    format!(
        r#"{{"tenant":"{tenant}","n":{N},"shots":{SHOTS},"seed":{seed},
            "strategy":"{strategy}","backend":"{backend}",
            "observables":["Z0 Z1","X2"],
            "circuit":{}}}"#,
        reference_circuit_json()
    )
}

/// What the server should have computed, straight from the batch engine.
fn direct_run(strategy: &str, backend: &str) -> (Vec<(usize, u64)>, Vec<f64>) {
    let cfg = SimConfig::default()
        .strategy(strategy.parse::<Strategy>().unwrap())
        .backend(backend.parse::<BackendChoice>().unwrap())
        .batch(1);
    let sim = BatchSimulator::from_config(cfg).unwrap();
    let (states, _report) = sim.run_fresh(&reference_circuit()).unwrap();
    let mut rng = StdRng::seed_from_u64(SEED);
    let counts = sample_counts(&states[0], SHOTS as usize, &mut rng);
    let z0z1 = PauliString::new(vec![(0, Pauli::Z), (1, Pauli::Z)]);
    let x2 = PauliString::new(vec![(2, Pauli::X)]);
    let expectations = vec![z0z1.expectation(&states[0]), x2.expectation(&states[0])];
    (counts, expectations)
}

fn served_counts(result: &Value) -> Vec<(usize, u64)> {
    result
        .get("counts")
        .and_then(Value::as_arr)
        .unwrap()
        .iter()
        .map(|pair| {
            let pair = pair.as_arr().unwrap();
            (pair[0].as_u64().unwrap() as usize, pair[1].as_u64().unwrap())
        })
        .collect()
}

fn served_expectations(result: &Value) -> Vec<f64> {
    result
        .get("expectations")
        .and_then(Value::as_arr)
        .unwrap()
        .iter()
        .map(|e| e.get("value").and_then(Value::as_f64).unwrap())
        .collect()
}

#[test]
fn served_results_are_bit_identical_to_direct_batch_runs() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let addr = server.addr();
    for strategy in ["naive", "fused:3", "planned:4:3", "auto"] {
        for backend in ["auto", "scalar"] {
            let body = submit_body("conformance", strategy, backend, SEED);
            let id = submit_job(addr, &body).unwrap();
            assert_eq!(
                wait_for_job(addr, id).unwrap(),
                "done",
                "job failed for {strategy}/{backend}"
            );
            let (status, raw) =
                http_request(addr, "GET", &format!("/jobs/{id}/result"), "").unwrap();
            assert_eq!(status, 200, "result fetch failed for {strategy}/{backend}: {raw}");
            let result = parse(&raw).unwrap();
            assert_eq!(result.get("n_qubits").and_then(Value::as_u64), Some(u64::from(N)));
            assert_eq!(result.get("shots").and_then(Value::as_u64), Some(SHOTS));
            assert_eq!(
                result.get("strategy").and_then(|s| s.as_str().map(String::from)),
                Some(strategy.to_string())
            );

            let (want_counts, want_exp) = direct_run(strategy, backend);
            assert_eq!(
                served_counts(&result),
                want_counts,
                "counts diverge for {strategy}/{backend}"
            );
            let got_exp = served_expectations(&result);
            assert_eq!(got_exp.len(), want_exp.len());
            for (i, (got, want)) in got_exp.iter().zip(&want_exp).enumerate() {
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "expectation {i} diverges for {strategy}/{backend}: {got} vs {want}"
                );
            }
        }
    }
    server.shutdown();
}

#[test]
fn cache_hit_returns_byte_identical_json() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let addr = server.addr();
    let body = submit_body("cache-tenant", "fused:3", "auto", SEED);

    let first = submit_job(addr, &body).unwrap();
    assert_eq!(wait_for_job(addr, first).unwrap(), "done");
    let (status, first_body) =
        http_request(addr, "GET", &format!("/jobs/{first}/result"), "").unwrap();
    assert_eq!(status, 200);

    // Same (circuit, seed, shots): must be answered from cache, and the
    // result bytes must be indistinguishable from the computed ones.
    let (status, resp) = http_request(addr, "POST", "/jobs", &body).unwrap();
    assert_eq!(status, 202);
    assert!(resp.contains("\"cached\":true"), "second submit not served from cache: {resp}");
    let second = parse(&resp).unwrap().get("job_id").and_then(Value::as_u64).unwrap();
    let (status, second_body) =
        http_request(addr, "GET", &format!("/jobs/{second}/result"), "").unwrap();
    assert_eq!(status, 200);
    assert_eq!(first_body, second_body, "cache hit must be byte-identical");

    // A different seed is a different result: miss, not a stale hit.
    let third =
        submit_job(addr, &submit_body("cache-tenant", "fused:3", "auto", SEED + 1)).unwrap();
    assert_eq!(wait_for_job(addr, third).unwrap(), "done");
    let (_, third_body) = http_request(addr, "GET", &format!("/jobs/{third}/result"), "").unwrap();
    assert_ne!(first_body, third_body);

    let stats = server.stats();
    assert_eq!(stats.cache_hits, 1);
    assert!(stats.cache_misses >= 2);
    server.shutdown();
}

#[test]
fn over_quota_tenant_is_rejected_cleanly() {
    let cfg = ServeConfig {
        quota: 1,
        // Long packing window: the first job stays queued while the
        // second submission arrives, so the quota is actually exercised.
        window_ms: 1_000,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg).unwrap();
    let addr = server.addr();

    let first = submit_job(addr, &submit_body("greedy", "naive", "auto", 1)).unwrap();
    let (status, resp) =
        http_request(addr, "POST", "/jobs", &submit_body("greedy", "naive", "auto", 2)).unwrap();
    assert_eq!(status, 429, "second active job must trip the quota: {resp}");
    assert!(resp.contains("serve/quota-exceeded"), "wrong error code: {resp}");

    // Quotas are per tenant: another tenant is admitted immediately.
    let other = submit_job(addr, &submit_body("patient", "naive", "auto", 3)).unwrap();

    assert_eq!(wait_for_job(addr, first).unwrap(), "done");
    assert_eq!(wait_for_job(addr, other).unwrap(), "done");

    // With the first job finished, the tenant's slot is free again.
    let retry = submit_job(addr, &submit_body("greedy", "naive", "auto", 2)).unwrap();
    assert_eq!(wait_for_job(addr, retry).unwrap(), "done");

    let stats = server.stats();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.completed, 3);
    server.shutdown();
}

#[test]
fn malformed_submissions_are_rejected_without_killing_the_worker() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let addr = server.addr();

    let malformed = [
        // Not JSON at all.
        "{{{{",
        // Missing the circuit.
        r#"{"tenant":"t","n":2,"shots":8,"seed":1}"#,
        // Qubit out of range.
        r#"{"tenant":"t","n":2,"shots":8,"seed":1,"circuit":[{"gate":"h","q":[7]}]}"#,
        // Duplicate qubits on a two-qubit gate (would assert in Circuit::push).
        r#"{"tenant":"t","n":2,"shots":8,"seed":1,"circuit":[{"gate":"cx","q":[0,0]}]}"#,
        // Unknown gate name.
        r#"{"tenant":"t","n":2,"shots":8,"seed":1,"circuit":[{"gate":"warp","q":[0]}]}"#,
        // QASM with duplicate operands (parser-level panic shielded).
        r#"{"tenant":"t","n":2,"shots":8,"seed":1,
            "qasm":"OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[0];\n"}"#,
        // Observable wider than the register.
        r#"{"tenant":"t","n":2,"shots":8,"seed":1,"observables":["Z5"],
            "circuit":[{"gate":"h","q":[0]}]}"#,
    ];
    for body in malformed {
        let (status, resp) = http_request(addr, "POST", "/jobs", body).unwrap();
        assert_eq!(status, 400, "expected a 400 for {body:?}, got {status}: {resp}");
        assert!(resp.contains("\"error\""), "error body missing code: {resp}");
    }

    // The server shrugged all of that off and still does real work.
    let id = submit_job(addr, &submit_body("survivor", "auto", "auto", SEED)).unwrap();
    assert_eq!(wait_for_job(addr, id).unwrap(), "done");
    assert_eq!(server.stats().completed, 1);
    server.shutdown();
}

#[test]
fn compatible_jobs_from_independent_tenants_share_one_batch() {
    let cfg = ServeConfig { window_ms: 400, ..ServeConfig::default() };
    let server = Server::start(cfg).unwrap();
    let addr = server.addr();

    // Same circuit/strategy/backend, different tenants and seeds: the
    // scheduler must pack all three into one gate-major batch.
    let ids: Vec<u64> = (0..3)
        .map(|i| {
            submit_job(addr, &submit_body(&format!("tenant-{i}"), "fused:3", "auto", 100 + i))
                .unwrap()
        })
        .collect();
    for &id in &ids {
        assert_eq!(wait_for_job(addr, id).unwrap(), "done");
    }

    let mut batch_ids = Vec::new();
    for &id in &ids {
        let (status, body) = http_request(addr, "GET", &format!("/jobs/{id}"), "").unwrap();
        assert_eq!(status, 200);
        let v = parse(&body).unwrap();
        assert_eq!(v.get("members").and_then(Value::as_u64), Some(3), "not packed: {body}");
        batch_ids.push(v.get("batch_id").and_then(Value::as_u64).unwrap());
    }
    assert!(
        batch_ids.windows(2).all(|w| w[0] == w[1]),
        "jobs landed in different batches: {batch_ids:?}"
    );

    let stats = server.stats();
    assert_eq!(stats.batches, 1, "three compatible jobs should cost one batch run");
    assert_eq!(stats.packed_jobs, 3);
    assert_eq!(stats.max_batch_members, 3);
    server.shutdown();
}

#[test]
fn sweep_jobs_pack_per_point_across_tenants() {
    let cfg = ServeConfig { window_ms: 400, ..ServeConfig::default() };
    let server = Server::start(cfg).unwrap();
    let addr = server.addr();

    // Two tenants sweep the same template at different points: the
    // structural fingerprint matches, so all three points ride one
    // gate-major batch.
    let sweep_body = |tenant: &str, points: &str| {
        format!(
            r#"{{"tenant":"{tenant}","n":3,"shots":0,"seed":5,
                "circuit":[{{"gate":"ry","q":[0],"param":0}},
                           {{"gate":"cx","q":[0,1]}},
                           {{"gate":"cx","q":[1,2]}},
                           {{"gate":"ry","q":[2],"param":1}}],
                "points":{points},
                "observables":["Z0 Z2","X0"]}}"#
        )
    };
    let alice_points = [[0.3, 0.9], [1.2, -0.4]];
    let a = submit_job(addr, &sweep_body("alice", "[[0.3,0.9],[1.2,-0.4]]")).unwrap();
    let b = submit_job(addr, &sweep_body("bob", "[[0.0,2.2]]")).unwrap();
    assert_eq!(wait_for_job(addr, a).unwrap(), "done");
    assert_eq!(wait_for_job(addr, b).unwrap(), "done");

    let stats = server.stats();
    assert_eq!(stats.batches, 1, "three points over one template should cost one batch");
    assert_eq!(stats.max_batch_members, 3, "per-point packing: 2 + 1 points in one batch");
    assert_eq!(stats.packed_jobs, 2);

    // Alice's per-point expectations are bit-identical to binding the
    // template and running each point serially.
    let (status, raw) = http_request(addr, "GET", &format!("/jobs/{a}/result"), "").unwrap();
    assert_eq!(status, 200, "{raw}");
    let result = parse(&raw).unwrap();
    assert_eq!(
        result.get("type").and_then(|t| t.as_str().map(String::from)).as_deref(),
        Some("sweep_result")
    );
    assert_eq!(result.get("points").and_then(Value::as_u64), Some(2));
    let per_point = result.get("results").and_then(Value::as_arr).unwrap();
    assert_eq!(per_point.len(), 2);
    let z0z2 = PauliString::new(vec![(0, Pauli::Z), (2, Pauli::Z)]);
    let x0 = PauliString::new(vec![(0, Pauli::X)]);
    for (i, point) in alice_points.iter().enumerate() {
        let mut template = ParamCircuit::new(3);
        template.ry(0).fixed(Gate::Cx(0, 1)).fixed(Gate::Cx(1, 2)).ry(2);
        let mut state = StateVector::zero(3);
        Simulator::new().run(&template.bind(point), &mut state).unwrap();
        let want = [z0z2.expectation(&state), x0.expectation(&state)];
        let got = served_expectations(&per_point[i]);
        assert_eq!(got.len(), want.len());
        for (k, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "point {i} expectation {k}: {g} vs {w}");
        }
    }

    // Same template, different points: packs, but never a cache hit.
    let c = submit_job(addr, &sweep_body("alice", "[[0.7,0.7]]")).unwrap();
    assert_eq!(wait_for_job(addr, c).unwrap(), "done");
    assert_eq!(server.stats().cache_hits, 0);

    // Identical resubmission: a cache hit with byte-identical body.
    let (status, resp) =
        http_request(addr, "POST", "/jobs", &sweep_body("alice", "[[0.7,0.7]]")).unwrap();
    assert_eq!(status, 202);
    assert!(resp.contains("\"cached\":true"), "identical sweep not cached: {resp}");
    server.shutdown();
}
