//! Differential conformance for the distributed exchange planners: the
//! naive, reorder, and overlap plans must be *bit-identical* (tolerance
//! 0.0) to each other and to the serial engine across rank counts, and
//! must stay bit-identical when executed through the resilient envelope
//! under injected transport faults — planning changes where amplitudes
//! live and when they move, never their values.

use a64fx_qcs::core::library;
use a64fx_qcs::core::prelude::*;
use a64fx_qcs::dist::{
    plan_circuit, run_distributed_planned, run_resilient, DistPlanKind, ResilienceConfig,
};
use a64fx_qcs::mpi::FaultPlan;

fn serial(circuit: &Circuit) -> StateVector {
    let mut s = StateVector::zero(circuit.n_qubits());
    Simulator::new().run(circuit, &mut s).unwrap();
    s
}

fn families() -> Vec<(&'static str, Circuit)> {
    vec![
        ("qft", library::qft(8)),
        ("ghz", library::ghz(8)),
        ("random", library::random_circuit(8, 24, 42)),
        ("trotter", library::trotter_ising(8, 2, 1.0, 0.8, 0.1)),
        ("qaoa", library::qaoa_maxcut_ring(8, 2, &[0.6, 0.4], &[0.3, 0.2])),
    ]
}

#[test]
fn every_plan_is_bit_identical_to_serial_across_rank_counts() {
    for (name, c) in families() {
        let reference = serial(&c);
        for ranks in [2usize, 4, 8] {
            for kind in DistPlanKind::ALL {
                let (state, _) = run_distributed_planned(&c, ranks, kind).unwrap();
                assert!(
                    state.approx_eq(&reference, 0.0),
                    "{name} {kind} ranks={ranks}: max diff {}",
                    state.max_abs_diff(&reference)
                );
            }
        }
    }
}

#[test]
fn resilient_execution_under_faults_is_bit_identical_for_every_plan() {
    // The CI fault-matrix scenario (QCS_FAULT_SEED=42 analogue): drop +
    // dup + flip + delay at the default intensity, through each plan.
    let c = library::qft(8);
    let reference = serial(&c);
    for kind in DistPlanKind::ALL {
        let cfg = ResilienceConfig {
            fault_plan: Some(FaultPlan::default_intensity(42)),
            dist_plan: Some(kind),
            ..ResilienceConfig::default()
        };
        let run = run_resilient(&c, 4, &cfg).unwrap();
        assert!(
            run.state.approx_eq(&reference, 0.0),
            "{kind} under faults diverged: max diff {}",
            run.state.max_abs_diff(&reference)
        );
        let injected: u64 = run.stats.iter().map(|s| s.faults_injected).sum();
        assert!(injected > 0, "{kind}: the fault plan must actually fire");
    }
}

#[test]
fn resilient_rollback_replays_planned_pre_swaps_exactly() {
    // Forced rollbacks land mid-plan; the replay must reconstruct the
    // physical layout (pre-swaps included) and still finish bit-exact.
    let c = library::random_circuit(8, 20, 9);
    let reference = serial(&c);
    for kind in [DistPlanKind::Reorder, DistPlanKind::Overlap] {
        let cfg = ResilienceConfig {
            checkpoint_every: 5,
            inject_failures: vec![7, 13],
            dist_plan: Some(kind),
            ..ResilienceConfig::default()
        };
        let run = run_resilient(&c, 4, &cfg).unwrap();
        assert!(
            run.state.approx_eq(&reference, 0.0),
            "{kind} rollback replay diverged: max diff {}",
            run.state.max_abs_diff(&reference)
        );
        assert_eq!(run.total_recoveries(), 8, "{kind}: two rollbacks on each of four ranks");
    }
}

#[test]
fn planned_kinds_exchange_no_more_than_naive_on_every_family() {
    // The planner's raison d'être, checked as a hard invariant on real
    // circuit families (the ≥2× wins are asserted in the E16 bench).
    for (name, c) in families() {
        let naive = plan_circuit(&c, 4, DistPlanKind::Naive).unwrap().profile.bytes_per_rank;
        for kind in [DistPlanKind::Reorder, DistPlanKind::Overlap] {
            let planned = plan_circuit(&c, 4, kind).unwrap().profile.bytes_per_rank;
            assert!(planned <= naive, "{name} {kind}: planned {planned} bytes vs naive {naive}");
        }
    }
}
