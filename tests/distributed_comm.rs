//! Communication-volume properties of the distributed engine: the byte
//! counts the E5 analysis depends on must follow the algorithm's
//! structure exactly.

use a64fx_qcs::core::circuit::Circuit;
use a64fx_qcs::core::library;
use a64fx_qcs::dist::{run_distributed, run_distributed_planned, DistPlanKind};
use a64fx_qcs::mpi::{NetworkModel, TofuParams};

/// Communication of the circuit minus the harness's final allgather.
/// Pinned to the naive per-gate plan: these tests assert the engine's
/// per-gate exchange regimes, which the reorder/overlap planners exist
/// to beat (their volumes are asserted in `dist_plan_conformance`).
fn algorithm_bytes(circuit: &Circuit, ranks: usize) -> Vec<u64> {
    let (_, with) = run_distributed_planned(circuit, ranks, DistPlanKind::Naive).unwrap();
    let empty = Circuit::new(circuit.n_qubits());
    let (_, base) = run_distributed_planned(&empty, ranks, DistPlanKind::Naive).unwrap();
    with.iter().zip(&base).map(|(a, b)| a.bytes_sent.saturating_sub(b.bytes_sent)).collect()
}

#[test]
fn one_global_dense_gate_costs_one_local_buffer() {
    let n = 10u32;
    for ranks in [2usize, 4, 8] {
        let local_amps = (1u64 << n) / ranks as u64;
        let mut c = Circuit::new(n);
        c.h(n - 1); // global for every rank count here
        let bytes = algorithm_bytes(&c, ranks);
        for (r, &b) in bytes.iter().enumerate() {
            assert_eq!(
                b,
                local_amps * 16,
                "rank {r} of {ranks}: one exchange of the local buffer expected"
            );
        }
    }
}

#[test]
fn local_and_diagonal_gates_cost_nothing() {
    let n = 10u32;
    let mut c = Circuit::new(n);
    // Local dense + global diagonal + global-control CX: all comm-free.
    c.h(0).ry(1, 0.4).rz(n - 1, 0.7).cz(n - 2, n - 1).cx(n - 1, 0);
    for ranks in [2usize, 4] {
        let bytes = algorithm_bytes(&c, ranks);
        assert!(bytes.iter().all(|&b| b == 0), "ranks={ranks}: {bytes:?}");
    }
}

#[test]
fn exchange_volume_scales_with_global_gate_count() {
    let n = 10u32;
    let ranks = 4usize;
    let local_bytes = ((1u64 << n) / ranks as u64) * 16;
    for gates in [1usize, 3, 5] {
        let mut c = Circuit::new(n);
        for _ in 0..gates {
            c.h(n - 1);
        }
        let bytes = algorithm_bytes(&c, ranks);
        for &b in &bytes {
            assert_eq!(b, gates as u64 * local_bytes, "gates={gates}");
        }
    }
}

#[test]
fn global_local_swap_moves_half_a_buffer_each_way() {
    // A dense 2q gate with one global qubit goes through the remap path:
    // swap in (half buffer), apply, swap out (half buffer) ⇒ one full
    // local buffer total.
    let n = 10u32;
    let ranks = 4usize;
    let local_bytes = ((1u64 << n) / ranks as u64) * 16;
    let mut c = Circuit::new(n);
    c.iswap(0, n - 1);
    let bytes = algorithm_bytes(&c, ranks);
    for &b in &bytes {
        assert_eq!(b, local_bytes, "two half-buffer swaps expected");
    }
}

#[test]
fn higher_rank_counts_shrink_per_rank_volume() {
    let n = 12u32;
    let c = library::qft(n);
    let mut per_rank_max = Vec::new();
    for ranks in [2usize, 4, 8] {
        let bytes = algorithm_bytes(&c, ranks);
        per_rank_max.push(*bytes.iter().max().unwrap());
    }
    // Local buffers halve with each doubling while the global gate count
    // grows slower: per-rank volume is non-increasing and eventually
    // strictly smaller. (For QFT the 2→4 step is exactly flat: one more
    // global dense gate on a half-sized buffer.)
    assert!(
        per_rank_max.windows(2).all(|w| w[1] <= w[0]),
        "per-rank bytes must not grow: {per_rank_max:?}"
    );
    assert!(
        per_rank_max.last().unwrap() < per_rank_max.first().unwrap(),
        "per-rank bytes should shrink overall: {per_rank_max:?}"
    );
}

#[test]
fn tofu_pricing_is_consistent_with_volume() {
    let n = 12u32;
    let c = library::qft(n);
    let net = NetworkModel::new(TofuParams::tofu_d());
    let (_, stats) = run_distributed(&c, 4).unwrap();
    for s in &stats {
        let t = net.rank_time(s);
        // Bandwidth term alone bounds from below; plus latency bounds
        // from above for the observed message count.
        let bw_only = s.bytes_sent as f64 / net.params.injection_bw();
        assert!(t.seconds >= bw_only);
        assert!(t.seconds <= bw_only + s.messages_sent as f64 * net.params.latency_s + 1e-12);
    }
}

#[test]
fn ghz_exchange_volume_follows_control_bits() {
    // GHZ's CX chain over 8 ranks (3 global qubits, local width 7):
    //   cx(6,7): local control → every rank exchanges one buffer;
    //   cx(7,8): *global* control (qubit 7) → only ranks whose bit 7 is
    //            set participate;
    //   cx(8,9): global control (qubit 8) → only ranks with bit 8 set.
    let n = 10u32;
    let ranks = 8usize;
    let local_bytes = ((1u64 << n) / ranks as u64) * 16;
    let bytes = algorithm_bytes(&library::ghz(n), ranks);
    for (r, &b) in bytes.iter().enumerate() {
        let expected_exchanges = 1 + (r & 1) as u64 + ((r >> 1) & 1) as u64;
        assert_eq!(b, expected_exchanges * local_bytes, "rank {r}: control-gated exchange count");
    }
}
