//! Differential conformance of the variational layer.
//!
//! The parameter-shift rule is *exact* for the generator-squared-to-I
//! rotations the [`ParamCircuit`] vocabulary exposes, so its gradients
//! must match central finite differences to the truncation error of the
//! latter — rtol 1e-6 at eps 1e-5 — on every kernel backend. The
//! driver's batched energies are additionally cross-checked against
//! serial runs under every execution strategy, and the two optimizers
//! get TFIM convergence smoke tests (deterministic, seeded).

use a64fx_qcs::core::config::SimConfig;
use a64fx_qcs::core::expectation::Hamiltonian;
use a64fx_qcs::core::kernels::simd::BackendChoice;
use a64fx_qcs::core::prelude::*;
use a64fx_qcs::core::variational::hardware_efficient_ansatz;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn tfim(n: u32) -> Hamiltonian {
    Hamiltonian::ising_chain(n, 1.0, 0.7)
}

fn random_theta(p: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..p).map(|_| rng.gen_range(-1.2..1.2)).collect()
}

/// rtol 1e-6 against a reference, with an absolute floor for
/// components that are themselves ~0.
fn assert_close(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len());
    for (j, (g, w)) in got.iter().zip(want).enumerate() {
        let tol = 1e-6 * w.abs().max(1.0);
        assert!((g - w).abs() <= tol, "{what}[{j}]: {g} vs {w} (tol {tol})");
    }
}

/// Parameter-shift ≡ central finite differences on every backend.
#[test]
fn parameter_shift_matches_finite_differences_on_every_backend() {
    let n = 4;
    let ansatz = hardware_efficient_ansatz(n, 2);
    let h = tfim(n);
    let theta = random_theta(ansatz.n_params(), 42);
    for backend in [BackendChoice::Auto, BackendChoice::Scalar, BackendChoice::Simd] {
        let engine = BatchSimulator::from_config(SimConfig::default().backend(backend)).unwrap();
        let driver = VqeDriver::with_engine(ansatz.clone(), &h, engine);
        let shift = driver.gradient(&theta).unwrap();
        let fd = driver.gradient_fd(&theta, 1e-5).unwrap();
        assert_close(&shift, &fd, &format!("gradient[{backend:?}]"));
    }
}

/// The shift rule is backend-independent well below the fd tolerance:
/// scalar and native gradients agree to 1e-12.
#[test]
fn gradients_agree_across_backends() {
    let n = 5;
    let ansatz = hardware_efficient_ansatz(n, 1);
    let h = tfim(n);
    let theta = random_theta(ansatz.n_params(), 7);
    let scalar = VqeDriver::with_engine(
        ansatz.clone(),
        &h,
        BatchSimulator::from_config(SimConfig::default().backend(BackendChoice::Scalar)).unwrap(),
    )
    .gradient(&theta)
    .unwrap();
    let native = VqeDriver::with_engine(
        ansatz.clone(),
        &h,
        BatchSimulator::from_config(SimConfig::default().backend(BackendChoice::Simd)).unwrap(),
    )
    .gradient(&theta)
    .unwrap();
    for (j, (s, v)) in scalar.iter().zip(&native).enumerate() {
        assert!((s - v).abs() <= 1e-12, "component {j}: scalar {s} vs simd {v}");
    }
}

/// The driver's batched (gate-major, naive) energies agree with a
/// serial run of the bound circuit under every strategy × backend
/// combination — the batched sweep is not a different simulator, just
/// a different schedule.
#[test]
fn batched_energies_agree_with_every_strategy_and_backend() {
    let n = 4;
    let ansatz = hardware_efficient_ansatz(n, 2);
    let h = tfim(n);
    let compiled = h.compile();
    let points: Vec<Vec<f64>> = (0..4).map(|i| random_theta(ansatz.n_params(), 50 + i)).collect();
    let driver = VqeDriver::new(ansatz.clone(), &h);
    let batched = driver.energies(&points).unwrap();

    for strategy in ["naive", "fused:2", "blocked:3", "planned:3:2", "auto"] {
        for backend in ["auto", "scalar"] {
            let cfg = SimConfig::default()
                .strategy(strategy.parse::<Strategy>().unwrap())
                .backend(backend.parse::<BackendChoice>().unwrap());
            let sim = cfg.build().unwrap();
            for (point, &want) in points.iter().zip(&batched) {
                let mut state = StateVector::zero(n);
                sim.run(&ansatz.bind(point), &mut state).unwrap();
                let got = compiled.expectation(&state);
                // Strategies reorder floating-point work; agreement is
                // to rounding, not to the bit.
                assert!(
                    (got - want).abs() <= 1e-9,
                    "{strategy}/{backend}: serial {got} vs batched {want}"
                );
            }
        }
    }
}

/// Gradient descent on the TFIM: monotone-ish descent to near the true
/// ground state, with the documented evaluation accounting.
#[test]
fn gradient_descent_converges_on_tfim() {
    let n = 4;
    let h = tfim(n);
    let ansatz = hardware_efficient_ansatz(n, 2);
    let p = ansatz.n_params();
    let driver = VqeDriver::new(ansatz, &h);
    let theta0 = random_theta(p, 11);
    let iters = 30;
    let result = driver.minimize_gd(&theta0, iters, 0.1).unwrap();

    assert_eq!(result.energies.len(), iters);
    assert_eq!(result.evals, iters * (2 * p + 1) + 1);
    let first = result.energies[0];
    assert!(result.energy < first, "no descent: {first} -> {}", result.energy);
    let ground = h.ground_energy(n);
    assert!(result.energy >= ground - 1e-9, "below the ground state: {} < {ground}", result.energy);
    assert!(
        result.energy - ground < 0.35,
        "too far from the ground state after {iters} iterations: {} vs {ground}",
        result.energy
    );
}

/// SPSA on the TFIM: deterministic per seed, descends, and never
/// undercuts the exact ground energy.
#[test]
fn spsa_converges_and_is_deterministic() {
    let n = 4;
    let h = tfim(n);
    let ansatz = hardware_efficient_ansatz(n, 1);
    let p = ansatz.n_params();
    let driver = VqeDriver::new(ansatz, &h);
    let theta0 = random_theta(p, 23);

    let a = driver.minimize_spsa(&theta0, 80, 0.4, 0.15, 5).unwrap();
    let b = driver.minimize_spsa(&theta0, 80, 0.4, 0.15, 5).unwrap();
    assert_eq!(a.energies, b.energies, "SPSA must be deterministic for a fixed seed");
    assert_eq!(a.theta, b.theta);
    assert_eq!(a.evals, 80 * 3 + 1);

    let other = driver.minimize_spsa(&theta0, 80, 0.4, 0.15, 6).unwrap();
    assert_ne!(a.energies, other.energies, "different seeds draw different directions");

    let ground = h.ground_energy(n);
    assert!(a.energy < a.energies[0], "no descent: {} -> {}", a.energies[0], a.energy);
    assert!(a.energy >= ground - 1e-9);
}
