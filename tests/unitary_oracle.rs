//! Dense-unitary oracle: an independent, deliberately naive reference
//! implementation. Every gate is expanded to its full `2^n × 2^n`
//! matrix (the Kronecker embedding of the gate's dense block into the
//! identity on the untouched qubits) and composed by plain dense
//! algebra. No kernels, no strided index tricks, no fusion — if the
//! simulator and this oracle agree on 200 generated circuits across
//! every execution strategy, the index arithmetic of the fast paths is
//! corroborated by construction rather than by self-comparison.

use a64fx_qcs::core::circuit::Gate;
use a64fx_qcs::core::complex::{ONE, ZERO};
use a64fx_qcs::core::prelude::*;
use a64fx_qcs::core::testing;

type Dense = Vec<Vec<C64>>;

/// A gate as `(qubits most-significant-first, dense 2^k × 2^k block)`.
fn gate_block(g: &Gate) -> (Vec<u32>, Dense) {
    if let Some((q, m)) = g.as_single() {
        let block = (0..2).map(|r| (0..2).map(|c| m.m[r][c]).collect()).collect();
        return (vec![q], block);
    }
    if let Some((hi, lo, m)) = g.as_two() {
        let block = (0..4).map(|r| (0..4).map(|c| m.m[r][c]).collect()).collect();
        return (vec![hi, lo], block);
    }
    // The three-qubit gates are permutations; `map[j]` is where basis
    // state `|j⟩` goes, with the qubit list read most-significant-first.
    match *g {
        Gate::Ccx(c1, c2, t) => (vec![c1, c2, t], permutation(&[0, 1, 2, 3, 4, 5, 7, 6])),
        Gate::CSwap(c, a, b) => (vec![c, a, b], permutation(&[0, 1, 2, 3, 4, 6, 5, 7])),
        ref other => unreachable!("gate {other:?} has no dense form"),
    }
}

fn permutation(map: &[usize]) -> Dense {
    let dim = map.len();
    let mut m = vec![vec![ZERO; dim]; dim];
    for (col, &row) in map.iter().enumerate() {
        m[row][col] = ONE;
    }
    m
}

/// Bits of `i` at the gate's qubits, most-significant-first.
fn local_index(i: usize, qs: &[u32]) -> usize {
    qs.iter().fold(0, |acc, &q| (acc << 1) | ((i >> q) & 1))
}

/// Expand a gate block to the full `2^n × 2^n` operator: the matrix is
/// the gate block on the gate's qubits tensored with the identity on
/// every other qubit (expressed entry-wise rather than as an explicit
/// Kronecker product chain, which is the same matrix without the qubit
/// reordering bookkeeping).
#[allow(clippy::needless_range_loop)] // entry-wise (row, col) indexing is the clearest form
fn embed(n: u32, qs: &[u32], block: &Dense) -> Dense {
    let dim = 1usize << n;
    let k = qs.len();
    let mut full = vec![vec![ZERO; dim]; dim];
    for col in 0..dim {
        let lc = local_index(col, qs);
        let rest = qs.iter().fold(col, |acc, &q| acc & !(1usize << q));
        for lr in 0..(1usize << k) {
            let mut row = rest;
            for (pos, &q) in qs.iter().enumerate() {
                row |= ((lr >> (k - 1 - pos)) & 1) << q;
            }
            full[row][col] = block[lr][lc];
        }
    }
    full
}

fn matvec(m: &Dense, v: &[C64]) -> Vec<C64> {
    m.iter().map(|row| row.iter().zip(v).fold(ZERO, |acc, (&a, &b)| acc + a * b)).collect()
}

fn matmul(a: &Dense, b: &Dense) -> Dense {
    let dim = a.len();
    let mut out = vec![vec![ZERO; dim]; dim];
    for r in 0..dim {
        for k in 0..dim {
            let x = a[r][k];
            for c in 0..dim {
                out[r][c] += x * b[k][c];
            }
        }
    }
    out
}

/// The oracle's final state: each embedded gate matrix applied in
/// circuit order to `|0…0⟩`.
fn oracle_state(circuit: &Circuit) -> Vec<C64> {
    let n = circuit.n_qubits();
    let mut v = vec![ZERO; 1 << n];
    v[0] = ONE;
    for g in circuit.gates() {
        let (qs, block) = gate_block(g);
        v = matvec(&embed(n, &qs, &block), &v);
    }
    v
}

fn max_diff(a: &[C64], b: &[C64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).fold(0.0, f64::max)
}

#[test]
fn simulator_matches_the_dense_oracle_on_200_circuits() {
    let strategies = [
        Strategy::Naive,
        Strategy::Fused { max_k: 3 },
        Strategy::Blocked { block_qubits: 3 },
        Strategy::Planned { block_qubits: 3, max_k: 3 },
    ];
    for seed in 0..200u64 {
        let n = 2 + (seed % 5) as u32; // 2..=6
        let gates = 8 + (seed % 9) as usize;
        let circuit = testing::random_circuit_seeded(n, gates, seed);
        let expected = oracle_state(&circuit);
        let strategy = strategies[(seed % 4) as usize];
        let sim = SimConfig::new().strategy(strategy).build().unwrap();
        let mut s = StateVector::zero(n);
        sim.run(&circuit, &mut s).unwrap();
        let diff = max_diff(s.amplitudes(), &expected);
        assert!(
            diff < 1e-12,
            "seed {seed} (n={n}, {gates} gates, {strategy:?}): max |Δ| = {diff:e}"
        );
    }
}

#[test]
fn batched_members_match_the_dense_oracle() {
    // The batch engine against the oracle directly, not just against
    // the single-run engine: every member of a threaded batch must land
    // on the oracle's state.
    for seed in [3u64, 17, 99] {
        let circuit = testing::random_circuit_seeded(5, 24, seed);
        let expected = oracle_state(&circuit);
        let engine = BatchSimulator::from_config(
            SimConfig::new()
                .strategy(Strategy::Planned { block_qubits: 3, max_k: 3 })
                .threads(2)
                .batch(4),
        )
        .unwrap();
        let (states, _) = engine.run_fresh(&circuit).unwrap();
        for (m, s) in states.iter().enumerate() {
            let diff = max_diff(s.amplitudes(), &expected);
            assert!(diff < 1e-12, "seed {seed} member {m}: max |Δ| = {diff:e}");
        }
    }
}

#[test]
fn composed_oracle_matrix_is_unitary_and_matches_gatewise_application() {
    // For narrow registers, additionally compose the whole circuit into
    // one dense matrix by chained multiplication. Its first column must
    // be the gate-wise oracle state, and U†U must be the identity —
    // guarding the oracle itself against a broken embedding.
    for seed in 0..20u64 {
        let n = 2 + (seed % 3) as u32; // 2..=4
        let circuit = testing::random_circuit_seeded(n, 12, 1000 + seed);
        let dim = 1usize << n;
        let mut u: Dense =
            (0..dim).map(|r| (0..dim).map(|c| if r == c { ONE } else { ZERO }).collect()).collect();
        for g in circuit.gates() {
            let (qs, block) = gate_block(g);
            u = matmul(&embed(n, &qs, &block), &u);
        }
        let gatewise = oracle_state(&circuit);
        let first_column: Vec<C64> = u.iter().map(|row| row[0]).collect();
        assert!(max_diff(&first_column, &gatewise) < 1e-12, "seed {seed}");
        for r in 0..dim {
            for c in 0..dim {
                let dot = (0..dim).fold(ZERO, |acc, k| acc + u[k][r].conj() * u[k][c]);
                let expect = if r == c { ONE } else { ZERO };
                assert!((dot - expect).abs() < 1e-10, "seed {seed}: U†U[{r}][{c}] = {dot:?}");
            }
        }
    }
}
