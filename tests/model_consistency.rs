//! Cross-crate consistency of the performance model: the closed-form
//! traffic formulas, the executable cache simulator, the SVE instruction
//! counter, and the timing model must tell one coherent story.

use a64fx_qcs::a64fx::cache::MemoryHierarchy;
use a64fx_qcs::a64fx::roofline::{attainable_gflops, ridge_point};
use a64fx_qcs::a64fx::timing::{predict, Bottleneck, ExecConfig, KernelProfile};
use a64fx_qcs::a64fx::traffic::{KernelKind, TrafficModel};
use a64fx_qcs::a64fx::ChipParams;
use a64fx_qcs::core::gates::standard;
use a64fx_qcs::core::kernels::sve::apply_1q_sve;
use a64fx_qcs::core::perf::{predict_batched, predict_circuit};
use a64fx_qcs::core::testing;
use a64fx_qcs::core::StateVector;
use a64fx_qcs::sve::{SveCtx, Vl};
use qcs_bench::replay_1q_stream;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn analytic_traffic_equals_simulated_traffic_for_dense_1q() {
    let chip = ChipParams::a64fx();
    let model = TrafficModel::a64fx();
    for n in [18u32, 20] {
        for t in [0u32, 7, n - 1] {
            let mut hier = MemoryHierarchy::new(chip.l1d, chip.l2);
            replay_1q_stream(&mut hier, n, t);
            hier.drain();
            let simulated = hier.stats().l2_mem_bytes;
            let analytic = model.predict(KernelKind::OneQubitDense, n, &[t]).mem_bytes;
            assert_eq!(simulated, analytic, "n={n} t={t}");
        }
    }
}

#[test]
fn sve_counted_flops_match_analytic_flops() {
    // The traffic model says a dense 1q gate costs 8 flops/amplitude
    // (4 complex FMA per pair). The counted SVE kernel must agree for a
    // full-lane target.
    let n = 12u32;
    let mut ctx = SveCtx::a64fx();
    let mut rng = StdRng::seed_from_u64(4);
    let mut state = StateVector::random(n, &mut rng);
    apply_1q_sve(&mut ctx, state.amplitudes_mut(), n - 1, &standard::h());
    let counted = ctx.flops();
    let analytic = TrafficModel::a64fx().predict(KernelKind::OneQubitDense, n, &[n - 1]).flops;
    // The split-complex kernel issues 4 fmul + 12 fma per amplitude pair;
    // counting fma as 2 flops that is 4 + 24 = 28 hardware flops/pair.
    // The model's *algorithmic* count is 16 flops/pair (8 per amplitude),
    // so the committed-ops/algorithmic ratio is exactly 28/16 = 1.75 —
    // the SVE overcount any A64FX hardware-counter measurement shows for
    // split-complex kernels. Pin it.
    let ratio = counted as f64 / analytic as f64;
    assert!(
        (ratio - 1.75).abs() < 1e-12,
        "counted {counted} vs analytic {analytic} (ratio {ratio})"
    );
}

#[test]
fn timing_model_is_monotone_in_resources() {
    let chip = ChipParams::a64fx();
    let amps = 1u64 << 26;
    let profile = KernelProfile {
        flops: amps * 8,
        mem_bytes: amps * 32,
        l2_bytes: amps * 32,
        instructions: amps,
        gather_scatter: 0,
    };
    let mut last = f64::MAX;
    for cmgs in 1..=4usize {
        let cfg = ExecConfig { cores: cmgs * 12, active_cmgs: cmgs, ..ExecConfig::full_chip() };
        let t = predict(&chip, &profile, &cfg).seconds;
        assert!(t < last, "more CMGs must not be slower");
        last = t;
    }
}

#[test]
fn bottleneck_transitions_match_roofline() {
    // Sweep arithmetic intensity through the ridge point: the timing
    // model's bottleneck must flip from memory to FP exactly where the
    // roofline says.
    let chip = ChipParams::a64fx();
    let ridge = ridge_point(chip.peak_flops_chip(), chip.peak_membw(4));
    let bytes = 1u64 << 30;
    for ai_tenths in 1..100u64 {
        let ai = ai_tenths as f64 / 10.0;
        let profile = KernelProfile {
            flops: (bytes as f64 * ai) as u64,
            mem_bytes: bytes,
            l2_bytes: bytes,
            instructions: 1,
            gather_scatter: 0,
        };
        let p = predict(&chip, &profile, &ExecConfig::full_chip());
        let expect_memory = ai < ridge;
        assert_eq!(
            p.bottleneck == Bottleneck::Memory,
            expect_memory,
            "ai={ai} ridge={ridge} bottleneck={:?}",
            p.bottleneck
        );
        // And the implied throughput sits on the roofline.
        let implied = profile.flops as f64 / p.seconds;
        let roof = attainable_gflops(ai, chip.peak_flops_chip(), chip.peak_membw(4));
        // 1e-6 tolerance: flops are u64-truncated from ai × bytes.
        assert!((implied - roof).abs() / roof < 1e-6, "ai={ai}");
    }
}

#[test]
fn circuit_prediction_decomposes_into_gate_predictions() {
    // predict_circuit must equal the sum over gates of single-gate
    // circuits' predictions (the model is per-sweep additive) — for
    // arbitrary generated circuits, not just structured families.
    let chip = ChipParams::a64fx();
    let cfg = ExecConfig::full_chip();
    for seed in 0..8u64 {
        let circuit = testing::random_circuit_seeded(8, 30, seed);
        let whole = predict_circuit(&chip, &cfg, &circuit);
        let mut sum_seconds = 0.0;
        let mut sum_bytes = 0u64;
        for g in circuit.gates() {
            let mut single = a64fx_qcs::core::circuit::Circuit::new(8);
            single.push(g.clone());
            let p = predict_circuit(&chip, &cfg, &single);
            sum_seconds += p.seconds;
            sum_bytes += p.mem_bytes;
        }
        assert!(
            (whole.seconds - sum_seconds).abs() / sum_seconds < 1e-12,
            "seed {seed}: per-sweep additivity broken"
        );
        assert_eq!(whole.mem_bytes, sum_bytes, "seed {seed}");
    }
}

#[test]
fn batched_prediction_is_consistent_with_the_single_run_model() {
    // The batched model must embed the single-run model exactly: its
    // per-member column is predict_circuit verbatim, the sequential
    // column is m × (member + gate-stream fetch), and amortizing the
    // fetch can only help (speedup ≥ 1, monotone in members).
    let chip = ChipParams::a64fx();
    let cfg = ExecConfig::full_chip();
    for seed in 0..4u64 {
        let circuit = testing::random_circuit_seeded(14, 50, seed);
        let single = predict_circuit(&chip, &cfg, &circuit);
        let mut last_speedup = 0.0;
        for members in [1usize, 2, 8, 32] {
            let b = predict_batched(&chip, &cfg, &circuit, members);
            assert_eq!(b.members, members);
            assert_eq!(b.per_member.seconds, single.seconds, "seed {seed}");
            assert_eq!(b.per_member.mem_bytes, single.mem_bytes, "seed {seed}");
            assert!(b.speedup >= 1.0, "seed {seed}: amortization cannot hurt");
            assert!(b.batched_seconds <= b.sequential_seconds, "seed {seed}");
            assert!(
                b.speedup >= last_speedup,
                "seed {seed}: speedup must be monotone in batch size"
            );
            last_speedup = b.speedup;
        }
    }
}

#[test]
fn vl_sweep_counted_instructions_halve_per_doubling() {
    // Full-lane kernel: dynamic instruction count ∝ 1/VL, the premise of
    // the E3 analysis.
    let n = 12u32;
    let mut counts = Vec::new();
    for vl in Vl::pow2_sweep() {
        let mut ctx = SveCtx::new(vl);
        let mut rng = StdRng::seed_from_u64(6);
        let mut state = StateVector::random(n, &mut rng);
        apply_1q_sve(&mut ctx, state.amplitudes_mut(), n - 1, &standard::h());
        counts.push(ctx.counts().total() as f64);
    }
    for w in counts.windows(2) {
        let ratio = w[0] / w[1];
        assert!((1.8..=2.2).contains(&ratio), "halving expected, got {ratio}");
    }
}
