//! Differential-conformance matrix for batched execution.
//!
//! The contract under test: a `BatchSimulator` run over B members is
//! **bit-identical** (tolerance 0.0) to B independent *serial* single
//! runs of the same configuration — across every execution strategy,
//! every kernel backend, serial and threaded batch pools, and with
//! telemetry on or off. The serial reference is deliberate: a threaded
//! single-run engine splits amplitude sweeps at pool-dependent chunk
//! boundaries and may drift by an ulp (the property suite bounds it at
//! 1e-10), whereas the batch engine shards at (member × block)
//! granularity and runs the serial kernel sequence inside every cell —
//! so its results are thread-count-invariant by construction. The
//! whole matrix also reruns in CI with `QCS_BACKEND=scalar` to pin the
//! portable kernels.
//!
//! A final section extends conformance to distributed members under
//! transport faults: with the seed taken from `QCS_FAULT_SEED` (read,
//! never set — the test binary is multithreaded), each member executed
//! through the resilient distributed path must be bit-identical to the
//! clean distributed run and agree with its batched counterpart.

use a64fx_qcs::core::prelude::*;
use a64fx_qcs::core::testing;
use a64fx_qcs::dist::{run_distributed, run_resilient, ResilienceConfig};
use a64fx_qcs::mpi::FaultPlan;
use rand::rngs::StdRng;
use rand::SeedableRng;

const MEMBERS: usize = 3;

const STRATEGIES: [Strategy; 5] = [
    Strategy::Naive,
    Strategy::Fused { max_k: 3 },
    Strategy::Blocked { block_qubits: 3 },
    Strategy::Planned { block_qubits: 3, max_k: 3 },
    // `Auto` resolves per circuit from the process-wide calibration, so
    // the batched run and its serial references pick the same concrete
    // strategy and the bit-identical contract still holds.
    Strategy::Auto,
];

/// B independent single runs through the single-run engine, each from
/// a fresh zero state — the reference the batch must reproduce.
fn reference_members(circuit: &Circuit, config: &SimConfig) -> Vec<StateVector> {
    (0..MEMBERS)
        .map(|_| {
            let sim = config.clone().build().unwrap();
            let mut s = StateVector::zero(circuit.n_qubits());
            sim.run(circuit, &mut s).unwrap();
            s
        })
        .collect()
}

#[test]
fn batched_runs_are_bit_identical_across_the_conformance_matrix() {
    let circuit = testing::random_circuit_seeded(6, 36, 9001);
    let backends = [BackendChoice::Auto, BackendChoice::Scalar, BackendChoice::Simd];
    for strategy in STRATEGIES {
        for backend in backends {
            for threads in [1usize, 3] {
                for traced in [false, true] {
                    let mut config =
                        SimConfig::new().strategy(strategy).backend(backend).batch(MEMBERS);
                    if traced {
                        config = config.telemetry(TelemetryConfig::on());
                    }
                    let cell =
                        format!("{strategy:?} × {backend:?} × threads={threads} × traced={traced}");
                    // Serial single runs are the reference; the engine
                    // under test additionally gets the cell's pool.
                    let expected = reference_members(&circuit, &config);
                    let engine = BatchSimulator::from_config(config.threads(threads)).unwrap();
                    let (states, report) = engine.run_fresh(&circuit).unwrap();
                    assert_eq!(report.members, MEMBERS, "{cell}");
                    if traced {
                        assert_eq!(report.traces.len(), MEMBERS, "{cell}");
                    } else if std::env::var("QCS_TRACE").is_err() {
                        // QCS_TRACE=1 (the CI tracing pass) legitimately
                        // turns tracing on for every cell via SimConfig::new.
                        assert!(report.traces.is_empty(), "{cell}");
                    }
                    for (m, (got, want)) in states.iter().zip(&expected).enumerate() {
                        assert!(
                            got.approx_eq(want, 0.0),
                            "{cell}: member {m} diverged (max diff {})",
                            got.max_abs_diff(want)
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn batched_trajectories_are_bit_identical_across_backends_and_pools() {
    // Trajectory sampling is the same contract with a noise channel and
    // per-member RNG in the loop: batch member m must reproduce a
    // sequential `run_trajectory` with seed m exactly.
    use a64fx_qcs::core::noise::run_trajectory;
    let circuit = testing::random_circuit_seeded(5, 20, 4242);
    let channel = NoiseChannel::Depolarizing { p: 0.08 };
    let seeds: Vec<u64> = (0..MEMBERS as u64).map(|i| 100 + i).collect();
    for backend in [BackendChoice::Auto, BackendChoice::Scalar] {
        for threads in [1usize, 3] {
            let engine =
                BatchSimulator::from_config(SimConfig::new().backend(backend).threads(threads))
                    .unwrap();
            let batch = engine.run_trajectories(&circuit, channel, &seeds).unwrap();
            for (m, &seed) in seeds.iter().enumerate() {
                let mut s = StateVector::zero(5);
                let mut rng = StdRng::seed_from_u64(seed);
                let errors = run_trajectory(&circuit, &mut s, channel, &mut rng);
                assert!(
                    batch.states[m].approx_eq(&s, 0.0),
                    "{backend:?} × threads={threads}: trajectory {m} diverged"
                );
                assert_eq!(batch.errors[m], errors, "{backend:?} × threads={threads}");
            }
        }
    }
}

#[test]
fn distributed_members_conform_under_the_fault_seed() {
    let seed: u64 = std::env::var("QCS_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42);
    let circuit = testing::random_circuit_seeded(8, 24, 7);
    // The single-process batched reference.
    let engine = BatchSimulator::from_config(SimConfig::new().batch(MEMBERS)).unwrap();
    let (members, _) = engine.run_fresh(&circuit).unwrap();
    // The clean distributed run the faulted members must reproduce.
    let (clean, _) = run_distributed(&circuit, 4).unwrap();
    for (m, member) in members.iter().enumerate() {
        let cfg = ResilienceConfig {
            fault_plan: Some(FaultPlan::default_intensity(seed + m as u64)),
            ..ResilienceConfig::default()
        };
        let run = run_resilient(&circuit, 4, &cfg).unwrap();
        assert!(
            run.state.approx_eq(&clean, 0.0),
            "member {m} (fault seed {}): transport faults leaked into the state",
            seed + m as u64
        );
        assert!(
            run.state.approx_eq(member, 1e-10),
            "member {m}: distributed result diverged from its batched counterpart \
             (max diff {})",
            run.state.max_abs_diff(member)
        );
    }
}
