//! End-to-end tests of the `a64fx-qcs` command-line binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_a64fx-qcs"))
}

fn run_ok(args: &[&str]) -> String {
    let out = bin().args(args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "command {:?} failed:\nstdout: {}\nstderr: {}",
        args,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

fn run_err(args: &[&str]) -> String {
    let out = bin().args(args).output().expect("binary runs");
    assert!(!out.status.success(), "command {args:?} should fail");
    String::from_utf8(out.stderr).expect("utf8 stderr")
}

#[test]
fn demo_ghz_reports_cat_state() {
    let out = run_ok(&["demo", "ghz", "4", "--probs", "2"]);
    assert!(out.contains("4 qubits, 4 gates"));
    assert!(out.contains("|0000⟩  0.500000"));
    assert!(out.contains("|1111⟩  0.500000"));
}

#[test]
fn demo_with_fused_strategy_and_model() {
    let out = run_ok(&["demo", "qft", "5", "--strategy", "fused:3", "--model"]);
    assert!(out.contains("A64FX model"), "{out}");
    assert!(out.contains("sweeps"));
}

#[test]
fn demo_with_planned_strategy() {
    let out = run_ok(&[
        "demo",
        "qft",
        "6",
        "--strategy",
        "planned:4:3",
        "--threads",
        "2",
        "--probs",
        "1",
    ]);
    assert!(out.contains("sweeps"), "{out}");
}

fn run_ok_env(args: &[&str], envs: &[(&str, &str)]) -> String {
    let mut cmd = bin();
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.args(args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "command {:?} with env {:?} failed:\nstdout: {}\nstderr: {}",
        args,
        envs,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn auto_strategy_round_trips_through_cli() {
    // The analytic calibration keeps the subprocess fast and machine-independent.
    let out = run_ok_env(
        &["demo", "ghz", "4", "--strategy", "auto", "--verbose", "--probs", "2"],
        &[("QCS_CALIBRATE", "analytic")],
    );
    assert!(out.contains("strategy:  auto"), "{out}");
    assert!(out.contains("|0000⟩  0.500000"), "{out}");
    assert!(out.contains("|1111⟩  0.500000"), "{out}");
}

#[test]
fn strategy_env_variable_sets_the_default() {
    let out = run_ok_env(
        &["demo", "ghz", "4", "--verbose", "--probs", "2"],
        &[("QCS_STRATEGY", "auto"), ("QCS_CALIBRATE", "analytic")],
    );
    assert!(out.contains("strategy:  auto"), "{out}");
    assert!(out.contains("|0000⟩  0.500000"), "{out}");
    // An explicit --strategy still beats the environment.
    let out = run_ok_env(
        &["demo", "ghz", "4", "--strategy", "fused:3", "--verbose"],
        &[("QCS_STRATEGY", "auto"), ("QCS_CALIBRATE", "analytic")],
    );
    assert!(out.contains("strategy:  fused:3"), "{out}");
}

#[test]
fn emit_then_run_roundtrip() {
    let qasm = run_ok(&["emit", "ghz", "3"]);
    assert!(qasm.contains("qreg q[3]"));
    assert!(qasm.contains("cx q[0],q[1]"));
    let dir = std::env::temp_dir().join("a64fx_qcs_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ghz3.qasm");
    std::fs::write(&path, &qasm).unwrap();
    let out = run_ok(&["run", path.to_str().unwrap(), "--probs", "2"]);
    assert!(out.contains("|000⟩  0.500000"));
    assert!(out.contains("|111⟩  0.500000"));
}

#[test]
fn distributed_run_reports_communication() {
    let out = run_ok(&["demo", "qft", "7", "--ranks", "4", "--probs", "1"]);
    assert!(out.contains("4 in-process ranks"));
    assert!(out.contains("communication:"));
}

#[test]
fn shots_are_deterministic_for_a_seed() {
    // Compare only the sample lines: the header includes wall time.
    let shots = |out: String| -> Vec<String> {
        out.lines().filter(|l| l.trim_start().starts_with('|')).map(str::to_string).collect()
    };
    let a = shots(run_ok(&["demo", "ghz", "3", "--shots", "50", "--seed", "9"]));
    let b = shots(run_ok(&["demo", "ghz", "3", "--shots", "50", "--seed", "9"]));
    assert!(!a.is_empty());
    assert_eq!(a, b);
}

#[test]
fn bad_strategy_is_a_clean_error() {
    let err = run_err(&["demo", "ghz", "3", "--strategy", "warp9"]);
    assert!(err.contains("unknown strategy"));
}

#[test]
fn too_many_ranks_is_a_clean_error() {
    let err = run_err(&["demo", "ghz", "4", "--ranks", "4"]);
    assert!(err.contains("fewer than 3 local qubits"));
}

#[test]
fn bad_qasm_reports_line() {
    let dir = std::env::temp_dir().join("a64fx_qcs_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.qasm");
    std::fs::write(&path, "qreg q[2];\nfrobnicate q[0];\n").unwrap();
    let err = run_err(&["run", path.to_str().unwrap()]);
    assert!(err.contains("line 2"), "{err}");
}

#[test]
fn help_prints_usage() {
    let out = run_ok(&["--help"]);
    assert!(out.contains("usage:"));
    assert!(out.contains("families:"));
    assert!(out.contains("--trace"));
}

#[test]
fn verbose_prints_the_resolved_configuration() {
    let out = run_ok(&[
        "demo",
        "qft",
        "5",
        "--strategy",
        "fused:3",
        "--threads",
        "2",
        "--schedule",
        "dynamic:32",
        "--verbose",
    ]);
    assert!(out.contains("configuration:"), "{out}");
    assert!(out.contains("strategy:  fused:3"));
    assert!(out.contains("threads:   2"));
    assert!(out.contains("schedule:  dynamic:32"));
}

#[test]
fn trace_out_writes_jsonl_and_reports_span_counts() {
    let dir = std::env::temp_dir().join("a64fx_qcs_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace_cli.jsonl");
    let _ = std::fs::remove_file(&path);
    let out = run_ok(&["demo", "qft", "5", "--trace-out", path.to_str().unwrap()]);
    assert!(out.contains("trace:"), "{out}");
    assert!(out.contains("trace written to"), "{out}");
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines = text.lines();
    assert!(lines.next().unwrap().contains("\"type\":\"run\""));
    assert!(lines.next().unwrap().contains("\"type\":\"span\""));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn traced_distributed_run_reports_per_rank_exchanges() {
    let out = run_ok(&["demo", "qft", "7", "--ranks", "2", "--trace"]);
    assert!(out.contains("rank 0:"), "{out}");
    assert!(out.contains("exchange spans"), "{out}");
}

#[test]
fn bad_schedule_is_a_clean_error() {
    let err = run_err(&["demo", "ghz", "3", "--schedule", "sometimes"]);
    assert!(err.contains("--schedule"), "{err}");
}

#[test]
fn zero_threads_is_a_clean_error() {
    let err = run_err(&["demo", "ghz", "3", "--threads", "0"]);
    assert!(err.contains("at least 1"), "{err}");
}

#[test]
fn batched_demo_reports_throughput_and_matches_single_run() {
    let out = run_ok(&["demo", "ghz", "4", "--batch", "4", "--probs", "2"]);
    assert!(out.contains("4 members"), "{out}");
    assert!(out.contains("circuits/s"), "{out}");
    // Member 0 feeds --probs exactly like a single run's state would.
    assert!(out.contains("|0000⟩  0.500000"), "{out}");
    assert!(out.contains("|1111⟩  0.500000"), "{out}");
}

#[test]
fn batched_demo_with_model_prints_the_amortization_column() {
    let out = run_ok(&["demo", "qft", "6", "--batch", "8", "--model"]);
    assert!(out.contains("circuits/s batched"), "{out}");
    assert!(out.contains("gate-stream reuse"), "{out}");
}

#[test]
fn trajectories_demo_reports_noise_events() {
    let out = run_ok(&[
        "demo",
        "ghz",
        "4",
        "--trajectories",
        "5",
        "--noise",
        "depolarizing:0.05",
        "--seed",
        "3",
    ]);
    assert!(out.contains("sampled 5 trajectories"), "{out}");
    assert!(out.contains("error events total"), "{out}");
}

#[test]
fn zero_batch_is_a_clean_error() {
    let err = run_err(&["demo", "ghz", "3", "--batch", "0"]);
    assert!(err.contains("at least 1 member"), "{err}");
}

#[test]
fn oversized_batch_is_a_clean_error() {
    let err = run_err(&["demo", "ghz", "3", "--batch", "5000"]);
    assert!(err.contains("exceeds the limit"), "{err}");
}

#[test]
fn batch_with_ranks_is_a_clean_error() {
    let err = run_err(&["demo", "qft", "8", "--batch", "2", "--ranks", "2"]);
    assert!(err.contains("--ranks"), "{err}");
}

#[test]
fn trajectories_without_noise_is_a_clean_error() {
    let err = run_err(&["demo", "ghz", "3", "--trajectories", "4"]);
    assert!(err.contains("--noise"), "{err}");
}

#[test]
fn zero_trajectories_is_a_clean_error() {
    let err = run_err(&["demo", "ghz", "3", "--trajectories", "0", "--noise", "bitflip:0.1"]);
    assert!(err.contains("at least 1 trajectory"), "{err}");
}

#[test]
fn noise_without_trajectories_is_a_clean_error() {
    let err = run_err(&["demo", "ghz", "3", "--noise", "bitflip:0.1"]);
    assert!(err.contains("--trajectories"), "{err}");
}

#[test]
fn bad_noise_spec_is_a_clean_error() {
    let err = run_err(&["demo", "ghz", "3", "--trajectories", "2", "--noise", "cosmic:0.5"]);
    assert!(err.contains("unknown channel"), "{err}");
    let err = run_err(&["demo", "ghz", "3", "--trajectories", "2", "--noise", "bitflip:1.5"]);
    assert!(err.contains("outside [0, 1]"), "{err}");
}

#[test]
fn batch_with_integrity_is_a_clean_error() {
    // Per-run rollback state does not compose with gate-major batching;
    // the engine rejects the combination with an explanation.
    let err = run_err(&["demo", "ghz", "4", "--batch", "2", "--integrity", "check"]);
    assert!(err.contains("do not compose with"), "{err}");
}

#[test]
fn batched_trace_out_writes_all_member_traces() {
    let dir = std::env::temp_dir().join("a64fx_qcs_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("batch_trace_cli.jsonl");
    let _ = std::fs::remove_file(&path);
    let out = run_ok(&["demo", "qft", "4", "--batch", "3", "--trace-out", path.to_str().unwrap()]);
    assert!(out.contains("3 member traces"), "{out}");
    let text = std::fs::read_to_string(&path).unwrap();
    let runs = text.lines().filter(|l| l.contains("\"type\":\"run\"")).count();
    assert_eq!(runs, 3, "one run header per member:\n{text}");
    for m in 0..3 {
        assert!(text.contains(&format!("member={m}")), "member {m} label missing");
    }
    let _ = std::fs::remove_file(&path);
}
