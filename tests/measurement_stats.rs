//! Statistical conformance of the measurement paths.
//!
//! Two claims are tested here:
//!
//! 1. **Born statistics.** Sampling (`sample_counts`) and projective
//!    mid-circuit measurement (`run_measured`) both draw from the
//!    state's Born distribution. A chi-square goodness-of-fit against
//!    the exact probabilities — with a threshold far beyond the
//!    critical value for the degrees of freedom involved — catches a
//!    biased CDF, a wrong collapse normalization, or a reused RNG
//!    stream.
//! 2. **Batched ≡ serial, bit-exact.** `BatchSimulator::run_measured`
//!    must reproduce the serial `Simulator::run_measured` trajectory
//!    member-for-member: same outcomes, same classical registers, same
//!    final amplitudes, independent of thread count — the per-member
//!    RNG-stream contract.

use a64fx_qcs::core::circuit::Circuit;
use a64fx_qcs::core::config::{PoolSpec, SimConfig};
use a64fx_qcs::core::measure::sample_counts;
use a64fx_qcs::core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Chi-square statistic of observed counts vs expected probabilities.
/// Cells with negligible expectation are pooled into their neighbors'
/// tail to keep the statistic well-behaved.
fn chi_square(counts: &[u64], probs: &[f64], shots: u64) -> f64 {
    assert_eq!(counts.len(), probs.len());
    let mut stat = 0.0;
    let mut pooled_obs = 0.0;
    let mut pooled_exp = 0.0;
    for (&obs, &p) in counts.iter().zip(probs) {
        let expected = p * shots as f64;
        if expected < 5.0 {
            pooled_obs += obs as f64;
            pooled_exp += expected;
            continue;
        }
        let d = obs as f64 - expected;
        stat += d * d / expected;
    }
    if pooled_exp > 0.0 {
        let d = pooled_obs - pooled_exp;
        stat += d * d / pooled_exp;
    }
    stat
}

/// A state with a spread-out, non-uniform distribution.
fn reference_circuit(n: u32) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    for q in 0..n {
        c.ry(q, 0.3 + 0.2 * q as f64);
    }
    c
}

/// `sample_counts` draws from the exact Born distribution: chi-square
/// across the full 2^n outcome space stays below a generous critical
/// value (df ≤ 31; χ²₀.₉₉₉(31) ≈ 61 — we allow 90).
#[test]
fn sampled_counts_follow_the_born_distribution() {
    let n = 5;
    let shots = 20_000u64;
    let circuit = reference_circuit(n);
    let mut state = StateVector::zero(n);
    Simulator::new().run(&circuit, &mut state).unwrap();
    let probs = state.probabilities();

    for seed in [3u64, 17, 99] {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0u64; 1 << n];
        for (basis, count) in sample_counts(&state, shots as usize, &mut rng) {
            counts[basis] = count;
        }
        assert_eq!(counts.iter().sum::<u64>(), shots);
        let stat = chi_square(&counts, &probs, shots);
        assert!(stat < 90.0, "seed {seed}: chi-square {stat} too large for Born sampling");
    }
}

/// Mid-circuit measurement outcomes follow the qubit's marginal: a GHZ
/// pair measured over many seeds splits ~50/50 and stays perfectly
/// correlated (both bits equal on every trajectory).
#[test]
fn measured_runs_follow_the_marginal_distribution() {
    let mut c = Circuit::new(2);
    c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
    let sim = Simulator::new();

    let trials = 2_000u64;
    let mut ones = 0u64;
    for seed in 0..trials {
        let mut state = StateVector::zero(2);
        let report = sim.run_measured(&c, &mut state, seed).unwrap();
        let bits = report.creg;
        assert!(bits == 0b00 || bits == 0b11, "GHZ bits decorrelated: {bits:#b}");
        ones += bits & 1;
    }
    // Two-sided binomial check: p=0.5, σ=√(n/4)≈22.4; allow 5σ.
    let dev = (ones as f64 - trials as f64 / 2.0).abs();
    assert!(dev < 5.0 * (trials as f64 / 4.0).sqrt(), "biased coin: {ones}/{trials}");
}

/// A measured qubit's one-frequency matches `prob_qubit_one` of the
/// pre-collapse state (chi-square on a 2-cell table, df=1).
#[test]
fn collapse_frequencies_match_the_premeasure_probability() {
    let n = 4;
    let mut c = reference_circuit(n);
    c.measure(2, 0);
    // Exact marginal before the collapse.
    let mut state = StateVector::zero(n);
    Simulator::new().run(&reference_circuit(n), &mut state).unwrap();
    let p1: f64 = state
        .probabilities()
        .iter()
        .enumerate()
        .filter(|(basis, _)| basis >> 2 & 1 == 1)
        .map(|(_, p)| p)
        .sum();

    let sim = Simulator::new();
    let trials = 4_000u64;
    let mut ones = 0u64;
    for seed in 0..trials {
        let mut s = StateVector::zero(n);
        let report = sim.run_measured(&c, &mut s, seed).unwrap();
        ones += u64::from(report.outcomes[0].outcome);
    }
    let counts = [trials - ones, ones];
    let stat = chi_square(&counts, &[1.0 - p1, p1], trials);
    assert!(stat < 11.0, "chi-square {stat} (df=1, χ²₀.₉₉₉ ≈ 10.8): p1={p1}, ones={ones}");
}

/// The per-member RNG-stream contract, end to end: batched measured
/// execution is bit-identical to serial trajectories at every thread
/// count, for a circuit mixing collapse and classical control.
#[test]
fn batched_measured_runs_are_bit_identical_to_serial() {
    let n = 5;
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    c.cx(0, 1).rzz(1, 2, 0.4);
    c.measure(1, 0);
    c.cif_bit(0, 0, Gate::X(3));
    c.ry(2, 0.8).cx(3, 4);
    c.measure(4, 1);
    c.cif_bit(1, 1, Gate::H(0));

    let seeds: Vec<u64> = (0..6).map(|i| 1000 + 37 * i).collect();
    let serial = Simulator::new();
    let mut want_states = Vec::new();
    let mut want_cregs = Vec::new();
    let mut want_outcomes = Vec::new();
    for &seed in &seeds {
        let mut s = StateVector::zero(n);
        let report = serial.run_measured(&c, &mut s, seed).unwrap();
        want_states.push(s);
        want_cregs.push(report.creg);
        want_outcomes.push(report.outcomes);
    }

    for threads in [1usize, 4] {
        let cfg = if threads == 1 {
            SimConfig::default()
        } else {
            SimConfig { pool: PoolSpec::Threads(threads), ..SimConfig::default() }
        };
        let engine = BatchSimulator::from_config(cfg).unwrap();
        let mut states: Vec<StateVector> = seeds.iter().map(|_| StateVector::zero(n)).collect();
        let batch = engine.run_measured(&c, &mut states, &seeds).unwrap();
        for (m, seed) in seeds.iter().enumerate() {
            assert_eq!(batch.cregs[m], want_cregs[m], "creg diverged (seed {seed}, {threads}t)");
            assert_eq!(
                batch.outcomes[m], want_outcomes[m],
                "outcomes diverged (seed {seed}, {threads}t)"
            );
            for (i, (got, want)) in
                states[m].amplitudes().iter().zip(want_states[m].amplitudes()).enumerate()
            {
                assert!(
                    got.re.to_bits() == want.re.to_bits() && got.im.to_bits() == want.im.to_bits(),
                    "amplitude {i} diverged (seed {seed}, {threads} threads): {got:?} vs {want:?}"
                );
            }
        }
    }
}
