//! Facade-level telemetry integration: tracing must be an observer —
//! identical physics, faithful accounting, and a JSONL artifact that
//! reproduces the in-memory trace.

use a64fx_qcs::core::library;
use a64fx_qcs::core::prelude::*;
use a64fx_qcs::core::telemetry::drift::DriftReport;
use a64fx_qcs::core::telemetry::sink::read_jsonl;

const EPS: f64 = 1e-12;

fn run_with(config: SimConfig, circuit: &Circuit) -> (StateVector, RunReport) {
    let sim = config.build().unwrap();
    let mut s = StateVector::zero(circuit.n_qubits());
    let report = sim.run(circuit, &mut s).unwrap();
    (s, report)
}

#[test]
fn tracing_never_changes_the_state() {
    let circuit = library::random_circuit(9, 14, 21);
    for strategy in [
        Strategy::Naive,
        Strategy::Fused { max_k: 4 },
        Strategy::Blocked { block_qubits: 5 },
        Strategy::Planned { block_qubits: 5, max_k: 3 },
    ] {
        // Pin telemetry off for the baseline: `SimConfig::new()` honours
        // QCS_TRACE, and this test must hold under `QCS_TRACE=1` too.
        let base = SimConfig::new().strategy(strategy).telemetry(TelemetryConfig::off());
        let (plain, plain_report) = run_with(base.clone(), &circuit);
        let (traced, traced_report) = run_with(base.traced(), &circuit);
        assert!(
            traced.approx_eq(&plain, EPS),
            "{strategy:?}: tracing changed the state (max diff {})",
            traced.max_abs_diff(&plain)
        );
        assert!(plain_report.trace.is_none());
        let trace = traced_report.trace.expect("traced run returns a trace");
        assert_eq!(trace.spans.len(), traced_report.sweeps);
        assert!(trace.summary.bytes > 0);
    }
}

#[test]
fn trace_survives_the_jsonl_round_trip() {
    let circuit = library::qft(8);
    let dir = std::env::temp_dir().join("a64fx_qcs_telemetry_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("roundtrip_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let config = SimConfig::new()
        .strategy(Strategy::Fused { max_k: 3 })
        .telemetry(TelemetryConfig::on().with_output(&path).with_label("roundtrip"));
    let (_, report) = run_with(config, &circuit);
    let mem = report.trace.unwrap();

    let disk = read_jsonl(&path).unwrap();
    assert_eq!(disk.len(), 1);
    assert_eq!(disk[0].meta, mem.meta);
    assert_eq!(disk[0].spans, mem.spans);
    assert_eq!(disk[0].summary.bytes, mem.summary.bytes);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn drift_report_prices_every_span_against_the_model() {
    let circuit = library::qft(9);
    let (_, report) = run_with(SimConfig::new().traced(), &circuit);
    let trace = report.trace.unwrap();
    let drift = DriftReport::from_trace(&trace);
    // Every sweep is a compute span with a model prediction behind it.
    assert_eq!(drift.compute.count, trace.spans.len());
    assert!(drift.compute.model_ns > 0.0);
    assert!(drift.compute_ratio().is_some());
    let table = drift.to_table();
    assert!(table.contains("total:compute"), "{table}");
}

#[test]
fn threaded_tracing_is_also_physics_neutral() {
    let circuit = library::random_circuit(10, 10, 5);
    let base = SimConfig::new().threads(3).schedule(Schedule::Dynamic { chunk: 64 });
    let (plain, _) = run_with(base.clone(), &circuit);
    let (traced, report) = run_with(base.traced(), &circuit);
    assert!(traced.approx_eq(&plain, EPS));
    let trace = report.trace.unwrap();
    assert_eq!(trace.summary.busy_ns_per_thread.len(), 3);
    assert!(trace.summary.busy_ns_per_thread.iter().sum::<u64>() > 0);
}
