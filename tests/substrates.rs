//! Cross-substrate composition tests: the parallel runtime, the MPI
//! substrate, and the SVE layer working together — the hybrid
//! MPI+OpenMP(+SIMD) execution model of the paper's platform.

use a64fx_qcs::mpi::collectives::ReduceOp;
use a64fx_qcs::mpi::World;
use a64fx_qcs::omp::{Schedule, ThreadPool};
use a64fx_qcs::sve::{SveCtx, Vl};

#[test]
fn openmp_inside_mpi_ranks() {
    // Each rank runs its own thread pool over its slice — the classic
    // hybrid decomposition. Global sum must match the serial result.
    let n_total = 1 << 16;
    let results = World::run(4, move |comm| {
        let slice = n_total / comm.size();
        let start = comm.rank() * slice;
        let pool = ThreadPool::new(3);
        let local = pool.parallel_reduce(
            start..start + slice,
            Schedule::Static { chunk: None },
            || 0.0f64,
            |acc, r| acc + r.map(|i| (i as f64).sqrt()).sum::<f64>(),
            |a, b| a + b,
        );
        comm.allreduce_scalar(ReduceOp::Sum, local)
    });
    let serial: f64 = (0..n_total).map(|i| (i as f64).sqrt()).sum();
    for r in results {
        assert!((r - serial).abs() / serial < 1e-12);
    }
}

#[test]
fn sve_kernels_inside_mpi_ranks() {
    // Each rank runs a counted SVE daxpy on its slice; instruction counts
    // must be identical across ranks (same slice sizes) and the collected
    // data must match the serial computation.
    let n = 4096usize;
    let results = World::run(4, move |comm| {
        let slice = n / comm.size();
        let mut ctx = SveCtx::new(Vl::A64FX);
        let x: Vec<f64> = (0..slice).map(|i| (comm.rank() * slice + i) as f64).collect();
        let mut y = vec![1.0f64; slice];
        // VLA daxpy.
        let a = ctx.splat(2.0);
        let mut i = 0;
        let mut p = ctx.whilelt(i, slice);
        while ctx.any(p) {
            let vx = ctx.load(p, &x[i..]);
            let vy = ctx.load(p, &y[i..]);
            let r = ctx.fma(vy, a, vx);
            ctx.store(r, p, &mut y[i..]);
            i += ctx.lanes();
            p = ctx.whilelt(i, slice);
        }
        let gathered = comm.allgather(&y);
        (ctx.counts().total(), gathered)
    });
    let (count0, full) = &results[0];
    for (c, data) in &results {
        assert_eq!(c, count0, "identical slices, identical instruction counts");
        assert_eq!(data, full);
    }
    for (i, &v) in full.iter().enumerate() {
        assert_eq!(v, 1.0 + 2.0 * i as f64);
    }
}

#[test]
fn threaded_simulation_inside_mpi_ranks() {
    // Full hybrid: every rank simulates the same generated circuit with
    // its own thread pool; all ranks must agree bit-for-bit
    // (deterministic kernels + deterministic reduction order). The
    // shared seeded generator guarantees every rank builds the same
    // circuit without communicating it.
    use a64fx_qcs::core::prelude::*;
    use a64fx_qcs::core::testing;
    let results = World::run(3, |comm| {
        let c = testing::random_circuit_seeded(8, 40, 1234);
        let mut s = StateVector::zero(8);
        SimConfig::new().threads(2).build().unwrap().run(&c, &mut s).unwrap();
        (comm.rank(), s.probabilities())
    });
    for (rank, r) in &results[1..] {
        assert_eq!(r, &results[0].1, "rank {rank} diverged");
    }
}

#[test]
fn batched_simulation_inside_mpi_ranks() {
    // Gate-major batching composes with the MPI substrate when each
    // rank owns whole members: a rank batching 4 members must produce
    // states bit-identical to every other rank's (same circuit, same
    // deterministic kernels), and to a serial single run.
    use a64fx_qcs::core::prelude::*;
    use a64fx_qcs::core::testing;
    let c = testing::random_circuit_seeded(7, 30, 77);
    let mut reference = StateVector::zero(7);
    // Built from `SimConfig::new()` so the reference resolves the same
    // ambient strategy (e.g. `QCS_STRATEGY=auto`) as the batch engine.
    SimConfig::new().build().unwrap().run(&c, &mut reference).unwrap();
    let results = World::run(2, |_comm| {
        let c = testing::random_circuit_seeded(7, 30, 77);
        let engine = BatchSimulator::from_config(SimConfig::new().threads(2).batch(4)).unwrap();
        let (states, report) = engine.run_fresh(&c).unwrap();
        assert_eq!(report.members, 4);
        states
    });
    for states in &results {
        for s in states {
            assert!(s.approx_eq(&reference, 0.0), "batched member diverged from serial run");
        }
    }
}

#[test]
fn nonblocking_halo_exchange_pattern() {
    // The stencil-style pattern the miniapp papers use: post irecvs for
    // both neighbours, isend both halos, wait, verify.
    let results = World::run(4, |comm| {
        let me = comm.rank();
        let n = comm.size();
        let left = (me + n - 1) % n;
        let right = (me + 1) % n;
        let r_left = comm.irecv(left, 1);
        let r_right = comm.irecv(right, 2);
        comm.isend(right, 1, &[me as u64]); // my id travels right as tag 1
        comm.isend(left, 2, &[me as u64]); // and left as tag 2
        let (_, from_left) = comm.wait::<u64>(r_left);
        let (_, from_right) = comm.wait::<u64>(r_right);
        (from_left[0], from_right[0])
    });
    for (me, &(l, r)) in results.iter().enumerate() {
        let n = results.len();
        assert_eq!(l as usize, (me + n - 1) % n);
        assert_eq!(r as usize, (me + 1) % n);
    }
}

#[test]
fn scatter_compute_gather_pipeline() {
    // Data-parallel master/worker: scatter rows, square them in a
    // thread pool, gather results.
    let results = World::run(4, |comm| {
        let data: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let mine = comm.scatter(0, if comm.rank() == 0 { Some(&data[..]) } else { None });
        let pool = ThreadPool::new(2);
        let squared: Vec<f64> = {
            let out = std::sync::Mutex::new(vec![0.0; mine.len()]);
            pool.parallel_for(0..mine.len(), Schedule::Static { chunk: None }, |r| {
                let mut g = out.lock().unwrap();
                for i in r {
                    g[i] = mine[i] * mine[i];
                }
            });
            out.into_inner().unwrap()
        };
        comm.gather(0, &squared)
    });
    let gathered = results[0].as_ref().expect("root has the gather");
    for (i, &v) in gathered.iter().enumerate() {
        assert_eq!(v, (i * i) as f64);
    }
}
