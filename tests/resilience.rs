//! End-to-end resilience: circuits run under injected transport faults
//! and forced rollbacks must finish bit-identical to clean runs, with
//! the recovery work visible in the statistics and traces.

use a64fx_qcs::core::library;
use a64fx_qcs::core::prelude::*;
use a64fx_qcs::core::telemetry::{ExchangePhase, SpanKind};
use a64fx_qcs::dist::{run_distributed, run_resilient, DistError, ResilienceConfig};
use a64fx_qcs::mpi::FaultPlan;

#[test]
fn default_intensity_faults_complete_bit_identical_with_visible_retries() {
    // The acceptance scenario: drop + delay + bit-flip at the default
    // intensity, a real circuit, and the requirement that the result is
    // *bit-identical* to the fault-free run while the trace of the
    // recovery work (retries, redeliveries) is observable.
    let circuit = library::qft(8);
    let (clean, _) = run_distributed(&circuit, 4).unwrap();
    let cfg = ResilienceConfig {
        fault_plan: Some(FaultPlan::default_intensity(42)),
        ..ResilienceConfig::default()
    };
    let run = run_resilient(&circuit, 4, &cfg).unwrap();
    assert!(
        clean.approx_eq(&run.state, 0.0),
        "faulted run diverged: max diff {}",
        clean.max_abs_diff(&run.state)
    );
    let injected: u64 = run.stats.iter().map(|s| s.faults_injected).sum();
    let retries: u64 = run.stats.iter().map(|s| s.retries).sum();
    assert!(injected > 0, "default intensity must inject faults on this much traffic");
    assert!(retries > 0, "dropped/corrupted frames must surface as retries");
    // Logical accounting: the faulted run moved the same logical bytes
    // and messages as a fault-free run of the same engine — retries are
    // physical, never logical. (The reference is the resilient engine
    // itself because its checkpointable gate-by-gate stepping schedules
    // exchanges blocking, while `run_distributed` under
    // QCS_DIST_PLAN=overlap chunks them — same bytes, more messages.)
    let clean_run = run_resilient(&circuit, 4, &ResilienceConfig::default()).unwrap();
    for (a, b) in run.stats.iter().zip(&clean_run.stats) {
        assert_eq!(a.bytes_sent, b.bytes_sent, "logical byte accounting must ignore retries");
        assert_eq!(a.messages_sent, b.messages_sent);
    }
}

#[test]
fn rollback_recovery_is_traced_and_exact() {
    let circuit = library::random_circuit(8, 10, 5);
    let (clean, _) = run_distributed(&circuit, 4).unwrap();
    let cfg = ResilienceConfig {
        checkpoint_every: 6,
        inject_failures: vec![4, 13],
        telemetry: TelemetryConfig::on(),
        ..ResilienceConfig::default()
    };
    let run = run_resilient(&circuit, 4, &cfg).unwrap();
    assert!(clean.approx_eq(&run.state, 0.0), "rolled-back run must be bit-identical");
    assert_eq!(run.total_recoveries(), 8, "two rollbacks on each of four ranks");
    for trace in &run.traces {
        let recoveries = trace
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::Exchange(ExchangePhase::Recovery))
            .count();
        assert_eq!(recoveries, 2, "each rank records one Recovery span per rollback");
    }
}

#[test]
fn fault_free_resilient_path_matches_plain_engine_exactly() {
    // With every resilience feature off the wrapper must be a no-op.
    // Under QCS_FAULT_SEED/QCS_FAULT_SPEC (the CI fault-matrix pass)
    // both engines inherit the environment plan, so retries may
    // legitimately occur — the zero-retry check only applies when the
    // environment is clean. Byte equality holds either way (logical
    // accounting ignores retransmissions).
    let env_faults = FaultPlan::from_env().is_some();
    for ranks in [2usize, 4] {
        let circuit = library::trotter_ising(8, 3, 1.0, 0.6, 0.1);
        let (plain, plain_stats) = run_distributed(&circuit, ranks).unwrap();
        let run = run_resilient(&circuit, ranks, &ResilienceConfig::default()).unwrap();
        assert!(plain.approx_eq(&run.state, 0.0));
        for (a, b) in run.stats.iter().zip(&plain_stats) {
            assert_eq!(a.bytes_sent, b.bytes_sent);
            if !env_faults {
                assert_eq!(a.retries, 0);
                assert_eq!(b.retries, 0);
            }
        }
    }
}

#[test]
fn unsupported_width_is_a_typed_error_not_a_panic() {
    let mut wide = Circuit::new(6);
    wide.h(0);
    let narrow = Circuit::new(5);
    let err = a64fx_qcs::mpi::World::run(2, |comm| {
        let mut st = a64fx_qcs::dist::DistState::zero(wide.n_qubits(), comm);
        st.apply_circuit(comm, &narrow).unwrap_err()
    });
    for e in err {
        assert_eq!(e, DistError::WidthMismatch { circuit: 5, state: 6 });
    }
}
