//! End-to-end integration: every execution path (serial, threaded,
//! fused, blocked, distributed) produces the same physics.

use a64fx_qcs::core::library;
use a64fx_qcs::core::prelude::*;
use a64fx_qcs::dist::run_distributed;
use a64fx_qcs::omp::Schedule;
use rand::rngs::StdRng;
use rand::SeedableRng;

const EPS: f64 = 1e-9;

fn reference(circuit: &Circuit) -> StateVector {
    let mut s = StateVector::zero(circuit.n_qubits());
    Simulator::new().run(circuit, &mut s).unwrap();
    s
}

fn circuits_under_test(n: u32) -> Vec<(&'static str, Circuit)> {
    vec![
        ("ghz", library::ghz(n)),
        ("qft", library::qft(n)),
        ("random", library::random_circuit(n, 12, 77)),
        ("qv", library::quantum_volume(n, 8)),
        ("trotter", library::trotter_ising(n, 4, 1.0, 0.8, 0.1)),
        ("grover", library::grover(n.min(7), 3)),
    ]
}

#[test]
fn every_strategy_agrees_on_every_circuit_family() {
    let n = 9u32;
    for (name, circuit) in circuits_under_test(n) {
        let m = circuit.n_qubits();
        let reference = reference(&circuit);
        for strategy in [
            Strategy::Fused { max_k: 3 },
            Strategy::Fused { max_k: 5 },
            Strategy::Blocked { block_qubits: 5 },
            Strategy::Planned { block_qubits: 5, max_k: 3 },
            Strategy::Planned { block_qubits: 3, max_k: 2 },
        ] {
            let mut s = StateVector::zero(m);
            SimConfig::new().strategy(strategy).build().unwrap().run(&circuit, &mut s).unwrap();
            assert!(
                s.approx_eq(&reference, EPS),
                "{name} under {strategy:?}: max diff {}",
                s.max_abs_diff(&reference)
            );
        }
    }
}

#[test]
fn threaded_and_scheduled_runs_agree() {
    let circuit = library::random_circuit(10, 10, 5);
    let reference = reference(&circuit);
    for threads in [2usize, 4] {
        for sched in [
            Schedule::Static { chunk: None },
            Schedule::Static { chunk: Some(64) },
            Schedule::Dynamic { chunk: 128 },
            Schedule::Guided { min_chunk: 32 },
        ] {
            let mut s = StateVector::zero(10);
            SimConfig::new()
                .threads(threads)
                .schedule(sched)
                .build()
                .unwrap()
                .run(&circuit, &mut s)
                .unwrap();
            assert!(s.approx_eq(&reference, EPS), "threads={threads} {sched:?}");
        }
    }
}

#[test]
fn distributed_agrees_with_serial_across_families() {
    for (name, circuit) in circuits_under_test(9) {
        let reference = reference(&circuit);
        for ranks in [2usize, 4] {
            let (dist, _) = run_distributed(&circuit, ranks).unwrap();
            assert!(
                dist.approx_eq(&reference, EPS),
                "{name} on {ranks} ranks: max diff {}",
                dist.max_abs_diff(&reference)
            );
        }
    }
}

#[test]
fn fused_threaded_distributed_triangle() {
    // Three completely different execution paths, one state.
    let circuit = library::qft(10);
    let serial = reference(&circuit);

    let mut fused_threaded = StateVector::zero(10);
    SimConfig::new()
        .strategy(Strategy::Fused { max_k: 4 })
        .threads(3)
        .build()
        .unwrap()
        .run(&circuit, &mut fused_threaded)
        .unwrap();

    let (distributed, _) = run_distributed(&circuit, 8).unwrap();

    assert!(fused_threaded.approx_eq(&serial, EPS));
    assert!(distributed.approx_eq(&serial, EPS));
    assert!(distributed.approx_eq(&fused_threaded, EPS));
}

#[test]
fn inverse_circuit_roundtrip_through_all_paths() {
    let circuit = library::random_circuit(9, 15, 31);
    let inv = circuit.inverse();
    let mut rng = StdRng::seed_from_u64(8);
    let init = StateVector::random(9, &mut rng);

    for strategy in [Strategy::Naive, Strategy::Fused { max_k: 4 }] {
        let mut s = init.clone();
        let sim = SimConfig::new().strategy(strategy).build().unwrap();
        sim.run(&circuit, &mut s).unwrap();
        assert!(!s.approx_eq(&init, 1e-3), "circuit must actually change the state");
        sim.run(&inv, &mut s).unwrap();
        assert!(s.approx_eq(&init, EPS), "{strategy:?} roundtrip failed");
    }
}

#[test]
fn norm_preserved_through_long_pipelines() {
    let mut big = Circuit::new(10);
    big.append(&library::qft(10));
    big.append(&library::random_circuit(10, 10, 3));
    big.append(&library::trotter_ising(10, 3, 0.7, 1.1, 0.05));
    let mut s = StateVector::zero(10);
    SimConfig::new()
        .strategy(Strategy::Fused { max_k: 4 })
        .build()
        .unwrap()
        .run(&big, &mut s)
        .unwrap();
    assert!((s.norm_sqr() - 1.0).abs() < 1e-8);
}
