//! Dense-matrix oracle for the fused observable reductions.
//!
//! The fused [`CompiledObservable`] path groups Pauli terms by flip
//! mask and reduces each basis group in one state sweep — index tricks
//! worth corroborating against something deliberately naive. Here every
//! observable is expanded to its full `2^n × 2^n` matrix
//! ([`Hamiltonian::to_dense`]) and the expectation computed by plain
//! dense algebra: `E = ⟨ψ|H|ψ⟩ = Σ_rc ψ̄_r H[r,c] ψ_c`. If the fused
//! reduction, the per-term scalar reference, and the dense oracle agree
//! on 200 generated (circuit, observable) pairs, the masked sign
//! arithmetic of the fast path is corroborated by construction.
//!
//! A property-based section then pins SIMD ≡ scalar across kernel
//! backends on the same generated inputs.

use a64fx_qcs::core::complex::C64;
use a64fx_qcs::core::expectation::{Hamiltonian, Pauli, PauliString};
use a64fx_qcs::core::kernels::simd::{backend_for, BackendChoice};
use a64fx_qcs::core::sim::Simulator;
use a64fx_qcs::core::state::StateVector;
use a64fx_qcs::core::testing;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random weighted Pauli sum: 1..=6 terms, each supported on
/// a random subset of the qubits with random X/Y/Z assignments and a
/// coefficient in (−2, 2).
fn random_observable(n: u32, seed: u64) -> Hamiltonian {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut h = Hamiltonian::zero();
    let terms = rng.gen_range(1..=6);
    for _ in 0..terms {
        let coeff = rng.gen_range(-2.0..2.0);
        let mut ops = Vec::new();
        for q in 0..n {
            if rng.gen_bool(0.4) {
                let p = match rng.gen_range(0..3) {
                    0 => Pauli::X,
                    1 => Pauli::Y,
                    _ => Pauli::Z,
                };
                ops.push((q, p));
            }
        }
        if ops.is_empty() {
            ops.push((rng.gen_range(0..n), Pauli::Z));
        }
        h.add_term(coeff, PauliString::new(ops));
    }
    h
}

/// `⟨ψ|H|ψ⟩` through the dense `2^n × 2^n` matrix — no masks, no
/// sweeps, no shared-basis grouping.
fn dense_expectation(h: &Hamiltonian, state: &StateVector) -> f64 {
    let n = state.n_qubits();
    let dim = 1usize << n;
    let m = h.to_dense(n);
    let amps = state.amplitudes();
    let mut acc = C64::default();
    for r in 0..dim {
        let mut row = C64::default();
        for (c, amp) in amps.iter().enumerate() {
            row += m[r * dim + c] * *amp;
        }
        acc += amps[r].conj() * row;
    }
    acc.re
}

/// A generated state to measure against: a seeded random circuit run
/// through the plain (naive) engine.
fn random_state(n: u32, gates: usize, seed: u64) -> StateVector {
    let circuit = testing::random_circuit_seeded(n, gates, seed);
    let mut state = StateVector::zero(n);
    Simulator::new().run(&circuit, &mut state).unwrap();
    state
}

/// The headline oracle: 200 (circuit, observable) pairs across widths
/// 2..=6, fused reduction vs dense algebra at 1e-12.
#[test]
fn fused_reduction_matches_dense_oracle_on_random_circuits() {
    let mut cases = 0;
    for seed in 0..200u64 {
        let n = 2 + (seed % 5) as u32; // 2..=6
        let gates = 4 + (seed % 13) as usize;
        let state = random_state(n, gates, seed);
        let h = random_observable(n, seed);
        let compiled = h.compile();

        let want = dense_expectation(&h, &state);
        let fused = compiled.expectation(&state);
        let scalar_terms = h.expectation_scalar(&state);
        assert!(
            (fused - want).abs() <= 1e-12,
            "seed {seed}: fused {fused} vs dense {want} (n={n})"
        );
        assert!(
            (scalar_terms - want).abs() <= 1e-12,
            "seed {seed}: per-term scalar {scalar_terms} vs dense {want} (n={n})"
        );
        // The whole point of compiling: terms sharing a basis share a
        // sweep, so the sweep count never exceeds the term count.
        assert!(compiled.sweeps() <= compiled.terms());
        cases += 1;
    }
    assert_eq!(cases, 200);
}

/// Diagonal-only observables take the single-norms-sweep fast path;
/// make sure that path agrees with the oracle too.
#[test]
fn diagonal_observables_share_one_sweep_and_match_the_oracle() {
    for seed in 0..40u64 {
        let n = 3 + (seed % 4) as u32;
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x2545_f491_4f6c_dd1d));
        let mut h = Hamiltonian::zero();
        for _ in 0..rng.gen_range(1..=4) {
            let mut ops = Vec::new();
            for q in 0..n {
                if rng.gen_bool(0.5) {
                    ops.push((q, Pauli::Z));
                }
            }
            if ops.is_empty() {
                ops.push((0, Pauli::Z));
            }
            h.add_term(rng.gen_range(-1.5..1.5), PauliString::new(ops));
        }
        let compiled = h.compile();
        assert_eq!(compiled.sweeps(), 1, "all-diagonal terms must share one norms sweep");
        let state = random_state(n, 10, seed);
        let want = dense_expectation(&h, &state);
        let got = compiled.expectation(&state);
        assert!((got - want).abs() <= 1e-12, "seed {seed}: {got} vs {want}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SIMD ≡ scalar: the same compiled observable reduced through the
    /// portable backend and through the host's best native backend must
    /// agree on every generated state.
    #[test]
    fn simd_reduction_matches_scalar_backend(seed in any::<u64>(), gates in 0usize..30) {
        let n = 5;
        let state = random_state(n, gates, seed);
        let compiled = random_observable(n, seed).compile();
        let scalar = compiled.expectation_with(backend_for(BackendChoice::Scalar), &state);
        for choice in [BackendChoice::Auto, BackendChoice::Simd] {
            let native = compiled.expectation_with(backend_for(choice), &state);
            prop_assert!(
                (scalar - native).abs() <= 1e-12,
                "scalar {} vs {:?} {}", scalar, choice, native
            );
        }
    }

    /// The single-string expectation (used by the serve result path)
    /// agrees with the dense oracle as well.
    #[test]
    fn pauli_string_expectation_matches_dense(seed in any::<u64>()) {
        let n = 4;
        let state = random_state(n, 12, seed);
        let h = random_observable(n, seed);
        for (_, string) in h.terms() {
            let mut one = Hamiltonian::zero();
            one.add_term(1.0, string.clone());
            let want = dense_expectation(&one, &state);
            prop_assert!((string.expectation(&state) - want).abs() <= 1e-12);
        }
    }
}
