//! Algorithm-level behavioral tests: the simulator produces the physics
//! each textbook algorithm promises, at sizes above the unit tests'.

use a64fx_qcs::core::expectation::{Pauli, PauliString};
use a64fx_qcs::core::library;
use a64fx_qcs::core::measure::{collapse, marginal_probabilities, sample_counts};
use a64fx_qcs::core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(circuit: &Circuit) -> StateVector {
    let mut s = StateVector::zero(circuit.n_qubits());
    SimConfig::new()
        .strategy(Strategy::Fused { max_k: 4 })
        .build()
        .unwrap()
        .run(circuit, &mut s)
        .unwrap();
    s
}

#[test]
fn grover_finds_marked_states_at_n8() {
    // n = 8 keeps the phase-polynomial multi-controlled-Z (2^n subset
    // terms per oracle) affordable in debug builds while still being
    // larger than the unit tests.
    let n = 8u32;
    for marked in [0usize, 100, 255] {
        let s = run(&library::grover(n, marked));
        let p = s.probability(marked);
        assert!(p > 0.9, "marked={marked}: P = {p}");
    }
}

#[test]
fn qft_peaks_detect_periodicity() {
    // A state with period 2^k in the computational basis transforms to
    // support only on multiples of 2^{n-k} — the structure behind Shor.
    let n = 10u32;
    let k = 3u32; // period 8
    let period = 1usize << k;
    let count = (1usize << n) / period;
    let amp = 1.0 / (count as f64).sqrt();
    let mut amps = vec![C64::default(); 1 << n];
    for i in (0..(1 << n)).step_by(period) {
        amps[i] = C64::real(amp);
    }
    let init = StateVector::from_amplitudes(&amps);
    let mut s = init;
    Simulator::new().run(&library::qft(n), &mut s).unwrap();
    let stride = 1usize << (n - k);
    for (i, p) in s.probabilities().iter().enumerate() {
        if i % stride == 0 {
            assert!(*p > 1e-6, "expected support at {i}");
        } else {
            assert!(*p < 1e-12, "unexpected support at {i}: {p}");
        }
    }
}

#[test]
fn ghz_correlations_are_maximal() {
    let n = 10u32;
    let s = run(&library::ghz(n));
    // ⟨Z_i Z_j⟩ = 1 for every pair; ⟨Z_i⟩ = 0.
    for q in 0..n {
        assert!(PauliString::z(q).expectation(&s).abs() < 1e-10);
    }
    for a in 0..n {
        for b in (a + 1)..n {
            let zz = PauliString::zz(a, b).expectation(&s);
            assert!((zz - 1.0).abs() < 1e-10, "⟨Z{a}Z{b}⟩ = {zz}");
        }
    }
    // X-basis parity: ⟨X⊗…⊗X⟩ = +1 for the GHZ state.
    let all_x = PauliString::new((0..n).map(|q| (q, Pauli::X)).collect());
    assert!((all_x.expectation(&s) - 1.0).abs() < 1e-9);
}

#[test]
fn ghz_collapse_cascades() {
    let n = 8u32;
    let mut s = run(&library::ghz(n));
    collapse(&mut s, 3, 1);
    // Every other qubit is now deterministically 1.
    for q in 0..n {
        assert!((s.prob_qubit_one(q) - 1.0).abs() < 1e-10, "qubit {q}");
    }
}

#[test]
fn trotter_conserves_energy_at_fine_steps() {
    // With J-only coupling (h = 0) the ZZ energy is conserved exactly;
    // with a field, finer Trotter steps conserve it better.
    let n = 8u32;
    let energy = |s: &StateVector| -> f64 {
        (0..n - 1).map(|q| -PauliString::zz(q, q + 1).expectation(s)).sum()
    };
    // Start from a product state with a known energy: |+…+⟩ has ⟨ZZ⟩ = 0.
    let coarse = {
        let mut c = library::hadamard_layers(n, 1);
        c.append(&library::trotter_ising(n, 2, 1.0, 0.5, 0.4));
        energy(&run(&c))
    };
    let fine = {
        let mut c = library::hadamard_layers(n, 1);
        c.append(&library::trotter_ising(n, 16, 1.0, 0.5, 0.05));
        energy(&run(&c))
    };
    // Same total time (0.8); the fine evolution should stay closer to the
    // exact dynamics. We can't know the exact value cheaply, but both
    // must remain bounded and finite, and they must differ (Trotter error
    // is real).
    assert!(coarse.is_finite() && fine.is_finite());
    assert!(coarse.abs() <= (n - 1) as f64 + 1e-9);
    assert!(fine.abs() <= (n - 1) as f64 + 1e-9);
}

#[test]
fn qaoa_expected_cut_improves_with_layers() {
    let n = 8u32;
    let cut = |p: usize, gammas: &[f64], betas: &[f64]| -> f64 {
        let s = run(&library::qaoa_maxcut_ring(n, p, gammas, betas));
        (0..n).map(|q| (1.0 - PauliString::zz(q, (q + 1) % n).expectation(&s)) / 2.0).sum()
    };
    // Coarse grid search at p=1.
    let mut best1 = f64::MIN;
    let mut best_pair = (0.0, 0.0);
    for gi in 1..8 {
        for bi in 1..8 {
            let (g, b) = (gi as f64 * 0.2, bi as f64 * 0.1);
            let c = cut(1, &[g], &[b]);
            if c > best1 {
                best1 = c;
                best_pair = (g, b);
            }
        }
    }
    // p=2 with the good p=1 angles plus a refinement layer beats p=1.
    let mut best2 = f64::MIN;
    for gi in 1..5 {
        for bi in 1..5 {
            let c = cut(2, &[best_pair.0, gi as f64 * 0.25], &[best_pair.1, bi as f64 * 0.12]);
            best2 = best2.max(c);
        }
    }
    assert!(best1 > n as f64 / 2.0 + 0.9, "p=1 beats random: {best1}");
    assert!(best2 >= best1 - 1e-9, "p=2 should not be worse: {best2} vs {best1}");
}

#[test]
fn sampling_statistics_converge_to_born_rule() {
    let n = 8u32;
    let circuit = library::random_circuit(n, 10, 99);
    let s = run(&circuit);
    let probs = s.probabilities();
    let mut rng = StdRng::seed_from_u64(123);
    let shots = 200_000usize;
    let counts = sample_counts(&s, shots, &mut rng);
    // Chi-square-ish check on the most likely outcomes.
    let mut top: Vec<(usize, f64)> = probs.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    for &(idx, p) in top.iter().take(10) {
        let observed = counts
            .iter()
            .find(|&&(i, _)| i == idx)
            .map(|&(_, c)| c as f64 / shots as f64)
            .unwrap_or(0.0);
        let sigma = (p * (1.0 - p) / shots as f64).sqrt();
        assert!(
            (observed - p).abs() < 6.0 * sigma + 1e-6,
            "idx={idx}: observed {observed} vs p {p} (σ = {sigma})"
        );
    }
}

#[test]
fn marginals_match_full_distribution() {
    let s = run(&library::random_circuit(9, 8, 55));
    let probs = s.probabilities();
    let qs = [1u32, 4, 7];
    let marg = marginal_probabilities(&s, &qs);
    // Recompute marginals by brute force.
    let mut expect = vec![0.0; 8];
    for (i, p) in probs.iter().enumerate() {
        let mut key = 0usize;
        for (j, &q) in qs.iter().enumerate() {
            if i & (1 << q) != 0 {
                key |= 1 << j;
            }
        }
        expect[key] += p;
    }
    for (a, b) in marg.iter().zip(&expect) {
        assert!((a - b).abs() < 1e-12);
    }
}
