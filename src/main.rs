//! `a64fx-qcs` — command-line front-end for the simulator.
//!
//! ```text
//! a64fx-qcs run <circuit.qasm> [options]     simulate an OpenQASM 2.0 file
//! a64fx-qcs demo <family> <n> [options]      run a built-in circuit family
//! a64fx-qcs emit <family> <n>                print a family as OpenQASM 2.0
//! a64fx-qcs vqe <n> [vqe options] [options]  variational ground-state search (TFIM)
//! a64fx-qcs serve [--addr host:port] [--threads <t>] [--verbose]
//!                                            start the multi-tenant job server
//!
//! families: ghz qft random qv trotter qaoa grover shor
//!
//! vqe options:
//!   --layers <l>                              hardware-efficient ansatz layers [2]
//!   --iters <k>                               optimizer iterations [60]
//!   --optimizer spsa|gd                       optimizer [spsa]
//!   --lr <f>                                  gradient-descent learning rate [0.1]
//!   --spsa-a <f> / --spsa-c <f>               SPSA gain constants [0.4 / 0.15]
//!   --coupling <J> / --field <h>              TFIM H = -J Σ ZZ - h Σ X [1.0 / 0.7]
//!
//! options:
//!   --strategy naive|fused:<k>|blocked:<b>|planned:<b>:<k>|auto   execution strategy [naive]
//!   --backend auto|scalar|simd               kernel SIMD backend [auto]
//!   --threads <t>                            worksharing threads [1]
//!   --schedule static[:c]|dynamic[:c]|guided[:c]   worksharing schedule [static]
//!   --ranks <r>                              distributed ranks (power of 2)
//!   --dist-plan naive|reorder|overlap        distributed exchange plan [env/naive]
//!   --shots <s>                              sample and print counts
//!   --probs <top>                            print the top-N probabilities
//!   --batch <b>                              run b independent members gate-major (single process)
//!   --trajectories <n>                       sample n noisy trajectories in one batch (needs --noise)
//!   --noise bitflip:p|phaseflip:p|depolarizing:p|damping:g   per-gate noise channel
//!   --model                                  attach the A64FX model report
//!   --trace                                  record per-sweep telemetry spans
//!   --trace-out <file.jsonl>                 write the trace as JSONL (implies --trace)
//!   --faults <spec>                          inject transport faults (needs --ranks > 1);
//!                                            spec: drop=p,dup=p,flip=p,delay=p:dur,… or "default"
//!   --checkpoint-every <n>                   snapshot the state every n gates
//!   --checkpoint-dir <path>                  where checkpoints live [qcs-checkpoints]
//!   --integrity off|check|repair|restore     amplitude integrity guard [off]
//!   --verbose                                print the resolved configuration
//!   --seed <u64>                             RNG seed [1]
//! ```
//!
//! All execution flags funnel into a single [`SimConfig`]; `--verbose`
//! prints it back (plus the run's unified `{"type":"outcome",...}` JSON
//! line — the same schema the job server returns and the JSONL usage
//! ledger appends), and the same value stamps every trace header. The
//! `serve` subcommand reads its remaining knobs from the `QCS_SERVE_*`
//! environment (quota, queue bound, width limit, packing window, result
//! cache, usage ledger). The
//! `QCS_TRACE` / `QCS_TRACE_OUT` environment variables enable telemetry
//! without touching the command line, `QCS_STRATEGY` picks the default
//! execution strategy (`--strategy` still wins), and `QCS_DIST_PLAN`
//! picks the default distributed plan (`--dist-plan` still wins).

use std::path::PathBuf;
use std::process::ExitCode;

use a64fx_qcs::a64fx::timing::ExecConfig;
use a64fx_qcs::a64fx::ChipParams;
use a64fx_qcs::core::config::CheckpointConfig;
use a64fx_qcs::core::measure::sample_counts;
use a64fx_qcs::core::prelude::*;
use a64fx_qcs::core::telemetry::drift::DriftReport;
use a64fx_qcs::core::{library, qasm};
use a64fx_qcs::dist::{
    run_distributed_planned, run_distributed_planned_traced, run_resilient, DistPlanKind,
    ResilienceConfig,
};
use a64fx_qcs::mpi::FaultPlan;
use a64fx_qcs::serve::{ServeConfig, Server};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Options {
    config: SimConfig,
    ranks: usize,
    dist_plan: Option<DistPlanKind>,
    shots: usize,
    probs: usize,
    verbose: bool,
    seed: u64,
    faults: Option<String>,
    checkpoint_every: usize,
    checkpoint_dir: Option<PathBuf>,
    trajectories: usize,
    noise: Option<NoiseChannel>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            // `SimConfig::new()` already resolves QCS_TRACE / QCS_TRACE_OUT.
            config: SimConfig::new(),
            ranks: 1,
            dist_plan: None,
            shots: 0,
            probs: 0,
            verbose: false,
            seed: 1,
            faults: None,
            checkpoint_every: 0,
            checkpoint_dir: None,
            trajectories: 0,
            noise: None,
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = args.split_first().ok_or_else(usage)?;
    match command.as_str() {
        "run" => {
            let (path, opts) = parse_run_args(rest)?;
            let source =
                std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let circuit = qasm::parse(&source).map_err(|e| e.to_string())?;
            execute(&circuit, &opts)
        }
        "demo" => {
            let (family, n, opts) = parse_demo_args(rest)?;
            let circuit = build_family(&family, n, opts.seed)?;
            execute(&circuit, &opts)
        }
        "emit" => {
            let (family, n, opts) = parse_demo_args(rest)?;
            let circuit = build_family(&family, n, opts.seed)?;
            let text = qasm::emit(&circuit)?;
            print!("{text}");
            Ok(())
        }
        "vqe" => vqe_command(rest),
        "serve" => serve_command(rest),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: a64fx-qcs run <file.qasm> [opts] | demo <family> <n> [opts] | emit <family> <n>\n\
            a64fx-qcs vqe <n> [--layers <l>] [--iters <k>] [--optimizer spsa|gd] [opts]\n\
            a64fx-qcs serve [--addr host:port] [--threads <t>] [--verbose]\n\
     families: ghz qft random qv trotter qaoa grover shor\n\
     vqe opts: --layers <l>  --iters <k>  --optimizer spsa|gd  --lr <f>\n\
           --spsa-a <f>  --spsa-c <f>  --coupling <J>  --field <h>\n\
     opts: --strategy naive|fused:<k>|blocked:<b>|planned:<b>:<k>|auto  --threads <t>  --ranks <r>\n\
           --dist-plan naive|reorder|overlap\n\
           --backend auto|scalar|simd  --schedule static[:c]|dynamic[:c]|guided[:c]\n\
           --shots <s>  --probs <top>  --model  --trace  --trace-out <file>  --verbose\n\
           --batch <b>  --trajectories <n>  --noise bitflip:p|phaseflip:p|depolarizing:p|damping:g\n\
           --faults <spec|default>  --checkpoint-every <n>  --checkpoint-dir <path>\n\
           --integrity off|check|repair|restore  --seed <u64>"
        .to_string()
}

/// `vqe`: variational ground-state search on the transverse-field
/// Ising chain. Every iteration's parameter sweep (shift points plus
/// the current point) executes as one gate-major batch through
/// [`VqeDriver`]; for n ≤ 10 the final energy is compared against the
/// exact dense ground state.
fn vqe_command(args: &[String]) -> Result<(), String> {
    let (n, rest) = args.split_first().ok_or("vqe needs a qubit count")?;
    let n: u32 = n.parse().map_err(|e| format!("qubit count: {e}"))?;
    if n < 2 {
        return Err("vqe needs at least 2 qubits for the ZZ chain".to_string());
    }

    // Peel the vqe-specific flags off first; everything left goes
    // through the shared `parse_options` (threads/backend/seed/…).
    let mut layers: u32 = 2;
    let mut iters: usize = 60;
    let mut optimizer = "spsa".to_string();
    let mut lr = 0.1;
    let mut spsa_a = 0.4;
    let mut spsa_c = 0.15;
    let mut coupling = 1.0;
    let mut field = 0.7;
    let mut passthrough: Vec<String> = Vec::new();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--layers" => {
                layers = value("--layers")?.parse().map_err(|e| format!("--layers: {e}"))?
            }
            "--iters" => iters = value("--iters")?.parse().map_err(|e| format!("--iters: {e}"))?,
            "--optimizer" => optimizer = value("--optimizer")?,
            "--lr" => lr = value("--lr")?.parse().map_err(|e| format!("--lr: {e}"))?,
            "--spsa-a" => {
                spsa_a = value("--spsa-a")?.parse().map_err(|e| format!("--spsa-a: {e}"))?
            }
            "--spsa-c" => {
                spsa_c = value("--spsa-c")?.parse().map_err(|e| format!("--spsa-c: {e}"))?
            }
            "--coupling" => {
                coupling = value("--coupling")?.parse().map_err(|e| format!("--coupling: {e}"))?
            }
            "--field" => field = value("--field")?.parse().map_err(|e| format!("--field: {e}"))?,
            other => passthrough.push(other.to_string()),
        }
    }
    let opts = parse_options(&passthrough)?;
    if iters == 0 {
        return Err("--iters needs at least 1 iteration".to_string());
    }

    let ham = Hamiltonian::ising_chain(n, coupling, field);
    let ansatz = hardware_efficient_ansatz(n, layers);
    let n_params = ansatz.n_params();
    println!(
        "vqe: TFIM chain n={n} (J={coupling}, h={field}), hardware-efficient ansatz \
         {layers} layers ({n_params} params)"
    );
    if opts.verbose {
        print!("configuration:\n{}", opts.config.describe());
    }

    let engine = BatchSimulator::from_config(opts.config.clone()).map_err(|e| e.to_string())?;
    let driver = VqeDriver::with_engine(ansatz, &ham, engine);

    // Deterministic small random start so the optimizer does not sit
    // on the zero-gradient symmetric point.
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let theta0: Vec<f64> = (0..n_params).map(|_| rng.gen_range(-0.3..0.3)).collect();

    let start = std::time::Instant::now();
    let result = match optimizer.as_str() {
        "spsa" => {
            println!(
                "optimizer: SPSA, {iters} iterations (a={spsa_a}, c={spsa_c}, 3-point batches)"
            );
            driver.minimize_spsa(&theta0, iters, spsa_a, spsa_c, opts.seed)
        }
        "gd" => {
            println!(
                "optimizer: parameter-shift gradient descent, {iters} iterations \
                 (lr={lr}, {}-point batches)",
                2 * n_params + 1
            );
            driver.minimize_gd(&theta0, iters, lr)
        }
        other => return Err(format!("--optimizer: unknown optimizer `{other}` (valid: spsa, gd)")),
    }
    .map_err(|e| e.to_string())?;
    let wall = start.elapsed().as_secs_f64();

    let stride = (iters / 10).max(1);
    for (k, e) in result.energies.iter().enumerate() {
        if k % stride == 0 || k + 1 == result.energies.len() {
            println!("  iter {k:>4}  E = {e:+.9}");
        }
    }
    println!(
        "final energy {:+.9} after {} circuit evaluations in {:.3} ms \
         ({:.1} evals/s, batched gate-major)",
        result.energy,
        result.evals,
        wall * 1e3,
        result.evals as f64 / wall
    );
    if n <= 10 {
        let exact = ham.ground_energy(n);
        println!(
            "exact ground energy {:+.9} (gap {:.3e}, {:.2}% of |E0|)",
            exact,
            result.energy - exact,
            (result.energy - exact).abs() / exact.abs() * 100.0
        );
    }
    Ok(())
}

/// `serve`: start the job server and park until `POST /shutdown`.
/// Everything beyond the bind address and worker threads comes from the
/// `QCS_SERVE_*` environment via [`ServeConfig::from_env`].
fn serve_command(args: &[String]) -> Result<(), String> {
    let mut cfg = ServeConfig::from_env();
    let mut verbose = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--threads" => {
                let t: usize =
                    value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?;
                if t == 0 {
                    return Err("--threads needs at least 1".to_string());
                }
                cfg.threads = t;
            }
            "--verbose" => verbose = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if verbose {
        println!(
            "serve config: quota={} max_pending={} max_qubits={} window_ms={} threads={} \
             cache={} usage={}",
            cfg.quota,
            cfg.max_pending,
            cfg.max_qubits,
            cfg.window_ms,
            cfg.threads,
            cfg.cache_capacity,
            cfg.usage_path.as_ref().map_or("off".to_string(), |p| p.display().to_string()),
        );
    }
    let server = Server::start(cfg).map_err(|e| e.to_string())?;
    println!("serving on http://{}", server.addr());
    server.wait();
    println!("server stopped");
    Ok(())
}

/// One parsing pass builds the complete [`SimConfig`] plus the
/// run-level knobs that live outside it (ranks, shots, output).
fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--strategy" => {
                opts.config.strategy = value("--strategy")?.parse()?;
            }
            "--backend" => {
                let v = value("--backend")?;
                opts.config.backend = v.parse().map_err(|e| format!("--backend: {e}"))?;
            }
            "--threads" => {
                let t: usize =
                    value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?;
                // Set the pool spec verbatim: `SimConfig::validate` turns
                // `--threads 0` into a clean error instead of a clamp.
                opts.config.pool = if t == 1 { PoolSpec::Serial } else { PoolSpec::Threads(t) };
            }
            "--schedule" => {
                opts.config.schedule =
                    value("--schedule")?.parse().map_err(|e| format!("--schedule: {e}"))?;
            }
            "--model" => {
                opts.config.model = Some((ChipParams::a64fx(), ExecConfig::full_chip()));
            }
            "--trace" => opts.config.telemetry.enabled = true,
            "--trace-out" => {
                let path = value("--trace-out")?;
                opts.config.telemetry = opts.config.telemetry.clone().with_output(path);
            }
            "--verbose" => opts.verbose = true,
            "--ranks" => {
                opts.ranks = value("--ranks")?.parse().map_err(|e| format!("--ranks: {e}"))?
            }
            "--dist-plan" => {
                opts.dist_plan =
                    Some(value("--dist-plan")?.parse().map_err(|e| format!("--dist-plan: {e}"))?);
            }
            "--shots" => {
                opts.shots = value("--shots")?.parse().map_err(|e| format!("--shots: {e}"))?
            }
            "--probs" => {
                opts.probs = value("--probs")?.parse().map_err(|e| format!("--probs: {e}"))?
            }
            "--batch" => {
                // Folded into the SimConfig so `validate()` owns the
                // limits (≥ 1 member, ≤ MAX_BATCH).
                opts.config.batch =
                    value("--batch")?.parse().map_err(|e| format!("--batch: {e}"))?;
            }
            "--trajectories" => {
                opts.trajectories =
                    value("--trajectories")?.parse().map_err(|e| format!("--trajectories: {e}"))?;
                if opts.trajectories == 0 {
                    return Err("--trajectories needs at least 1 trajectory".to_string());
                }
            }
            "--noise" => opts.noise = Some(parse_noise(&value("--noise")?)?),
            "--seed" => opts.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--faults" => opts.faults = Some(value("--faults")?),
            "--checkpoint-every" => {
                opts.checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?;
            }
            "--checkpoint-dir" => {
                opts.checkpoint_dir = Some(PathBuf::from(value("--checkpoint-dir")?));
            }
            "--integrity" => {
                let mode: IntegrityMode =
                    value("--integrity")?.parse().map_err(|e| format!("--integrity: {e}"))?;
                opts.config.integrity = IntegrityPolicy { mode, ..IntegrityPolicy::default() };
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    // The checkpoint knobs fold into the SimConfig so the single-process
    // engine validates and uses them; the distributed path reads the
    // same fields back out of the config.
    if opts.checkpoint_every > 0 {
        let dir = opts.checkpoint_dir.clone().unwrap_or_else(|| PathBuf::from("qcs-checkpoints"));
        opts.config.checkpoint = Some(CheckpointConfig::new(opts.checkpoint_every, dir));
    } else if opts.checkpoint_dir.is_some() {
        return Err("--checkpoint-dir needs --checkpoint-every".to_string());
    }
    if opts.faults.is_some() && opts.ranks <= 1 {
        return Err("--faults injects transport faults and needs --ranks > 1".to_string());
    }
    if opts.dist_plan.is_some() && opts.ranks <= 1 {
        return Err("--dist-plan schedules distributed exchanges and needs --ranks > 1".to_string());
    }
    if (opts.config.batch > 1 || opts.trajectories > 0) && opts.ranks > 1 {
        return Err("--batch/--trajectories run gate-major in a single process and do not \
             compose with --ranks > 1"
            .to_string());
    }
    if opts.trajectories > 0 && opts.noise.is_none() {
        return Err(
            "--trajectories samples noisy trajectories and needs --noise <channel>".to_string()
        );
    }
    if opts.noise.is_some() && opts.trajectories == 0 {
        return Err("--noise needs --trajectories <n> to sample against".to_string());
    }
    Ok(opts)
}

/// Resolve `--noise` into a channel: `<kind>:<prob>` with kind one of
/// `bitflip`, `phaseflip`, `depolarizing`, `damping`.
fn parse_noise(spec: &str) -> Result<NoiseChannel, String> {
    let (kind, prob) = spec
        .split_once(':')
        .ok_or_else(|| format!("--noise: `{spec}` is not of the form <kind>:<prob>"))?;
    let p: f64 = prob.parse().map_err(|e| format!("--noise: probability `{prob}`: {e}"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("--noise: probability {p} outside [0, 1]"));
    }
    Ok(match kind {
        "bitflip" => NoiseChannel::BitFlip { p },
        "phaseflip" => NoiseChannel::PhaseFlip { p },
        "depolarizing" => NoiseChannel::Depolarizing { p },
        "damping" => NoiseChannel::AmplitudeDamping { gamma: p },
        other => {
            return Err(format!(
                "--noise: unknown channel `{other}` \
                 (valid: bitflip, phaseflip, depolarizing, damping)"
            ))
        }
    })
}

/// Resolve `--faults` into a plan: `default` scales to the paper's
/// default intensity, anything else is a `drop=…,dup=…` spec. The seed
/// comes from `QCS_FAULT_SEED` when set, else `--seed`.
fn parse_fault_plan(spec: &str, seed: u64) -> Result<FaultPlan, String> {
    let seed = std::env::var("QCS_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(seed);
    if spec == "default" {
        return Ok(FaultPlan::default_intensity(seed));
    }
    FaultPlan::parse(spec, seed).map_err(|e| format!("--faults: {e}"))
}

fn parse_run_args(args: &[String]) -> Result<(String, Options), String> {
    let (path, rest) = args.split_first().ok_or("run needs a .qasm path")?;
    Ok((path.clone(), parse_options(rest)?))
}

fn parse_demo_args(args: &[String]) -> Result<(String, u32, Options), String> {
    let (family, rest) = args.split_first().ok_or("demo needs a family name")?;
    let (n, rest) = rest.split_first().ok_or("demo needs a qubit count")?;
    let n: u32 = n.parse().map_err(|e| format!("qubit count: {e}"))?;
    Ok((family.clone(), n, parse_options(rest)?))
}

fn build_family(family: &str, n: u32, seed: u64) -> Result<Circuit, String> {
    Ok(match family {
        "ghz" => library::ghz(n),
        "qft" => library::qft(n),
        "random" => library::random_circuit(n, 2 * n as usize, seed),
        "qv" => library::quantum_volume(n, seed),
        "trotter" => library::trotter_ising(n, 8, 1.0, 0.8, 0.1),
        "qaoa" => library::qaoa_maxcut_ring(n, 2, &[0.6, 0.4], &[0.3, 0.2]),
        "grover" => library::grover(n, (1usize << n) - 2),
        "shor" => {
            let t = n
                .checked_sub(4)
                .filter(|&t| t >= 2)
                .ok_or("shor needs n ≥ 6 (4 work + ≥2 counting qubits)")?;
            library::shor15_order_finding(7, t)
        }
        other => return Err(format!("unknown family `{other}`")),
    })
}

fn execute(circuit: &Circuit, opts: &Options) -> Result<(), String> {
    println!(
        "circuit: {} qubits, {} gates, depth {}",
        circuit.n_qubits(),
        circuit.len(),
        circuit.depth()
    );
    if opts.verbose {
        print!("configuration:\n{}", opts.config.describe());
    }

    let state = if opts.ranks > 1 {
        execute_distributed(circuit, opts)?
    } else if opts.trajectories > 0 || opts.config.batch > 1 {
        execute_batched(circuit, opts)?
    } else {
        let sim = opts.config.clone().build().map_err(|e| e.to_string())?;
        let mut state = StateVector::zero(circuit.n_qubits());
        let report = sim.run(circuit, &mut state).map_err(|e| e.to_string())?;
        println!(
            "executed {} sweeps in {:.3} ms (host, {} kernels)",
            report.sweeps,
            report.wall_seconds * 1e3,
            report.backend
        );
        if let Some(model) = &report.predicted {
            println!(
                "A64FX model: {:.3} µs, {:.1} MiB HBM traffic, {:.1} GF/s effective, bottlenecks {:?}",
                model.seconds * 1e6,
                model.mem_bytes as f64 / (1 << 20) as f64,
                model.gflops(),
                model.bottlenecks
            );
        }
        if let Some(trace) = &report.trace {
            println!(
                "trace: {} spans ({} dropped), {:.1} MiB touched",
                trace.summary.spans,
                trace.summary.dropped,
                trace.summary.bytes as f64 / (1 << 20) as f64
            );
            if opts.verbose {
                print!("{}", DriftReport::from_trace(trace).to_table());
            }
            if let Some(path) = &opts.config.telemetry.trace_path {
                println!("trace written to {}", path.display());
            }
        }
        if opts.verbose {
            // The unified result schema — same line the job server's
            // usage ledger appends and `GET /stats` aggregates from.
            let outcome = Outcome::from(&report)
                .with_config(
                    &opts.config.strategy.to_string(),
                    opts.config.pool.threads() as u32,
                    circuit.n_qubits(),
                )
                .with_label("cli");
            println!("outcome: {}", outcome.to_json());
        }
        state
    };

    if opts.probs > 0 {
        let mut probs: Vec<(usize, f64)> = state.probabilities().into_iter().enumerate().collect();
        probs.sort_by(|a, b| b.1.total_cmp(&a.1));
        println!("top {} probabilities:", opts.probs);
        let width = circuit.n_qubits() as usize;
        for &(basis, p) in probs.iter().take(opts.probs) {
            println!("  |{basis:0width$b}⟩  {p:.6}");
        }
    }

    if opts.shots > 0 {
        let mut rng = StdRng::seed_from_u64(opts.seed);
        println!("{} shots:", opts.shots);
        let width = circuit.n_qubits() as usize;
        for (basis, count) in sample_counts(&state, opts.shots, &mut rng) {
            println!("  |{basis:0width$b}⟩  {count}");
        }
    }
    Ok(())
}

/// Gate-major batched execution: `--batch` runs B fresh members of the
/// same circuit, `--trajectories` samples N noisy trajectories. Both
/// are bit-identical to the equivalent sequence of single runs; the
/// returned state (member 0) feeds `--probs` / `--shots` like a single
/// run's would.
fn execute_batched(circuit: &Circuit, opts: &Options) -> Result<StateVector, String> {
    let engine = BatchSimulator::from_config(opts.config.clone()).map_err(|e| e.to_string())?;
    if opts.trajectories > 0 {
        let channel = opts.noise.expect("parse_options guarantees --noise with --trajectories");
        let seeds: Vec<u64> =
            (0..opts.trajectories as u64).map(|i| opts.seed.wrapping_add(i)).collect();
        let batch = engine.run_trajectories(circuit, channel, &seeds).map_err(|e| e.to_string())?;
        let total: usize = batch.errors.iter().sum();
        println!(
            "sampled {} trajectories in {:.3} ms (batch #{}, {:.1} trajectories/s)",
            batch.states.len(),
            batch.wall_seconds * 1e3,
            batch.batch_id,
            batch.states.len() as f64 / batch.wall_seconds
        );
        println!(
            "noise: {:?}, {} error events total ({:.2} per trajectory)",
            channel,
            total,
            total as f64 / batch.states.len() as f64
        );
        let mut states = batch.states;
        Ok(states.swap_remove(0))
    } else {
        let (mut states, report) = engine.run_fresh(circuit).map_err(|e| e.to_string())?;
        println!(
            "executed {} members × {} sweeps in {:.3} ms (batch #{}, {} kernels, \
             {:.1} circuits/s)",
            report.members,
            report.sweeps,
            report.wall_seconds * 1e3,
            report.batch_id,
            report.backend,
            report.circuits_per_sec
        );
        if let Some(model) = &report.predicted {
            println!(
                "A64FX model: {:.1} circuits/s batched vs {:.1} sequential \
                 ({:.2}× from gate-stream reuse)",
                model.circuits_per_sec_batched(),
                model.circuits_per_sec_sequential(),
                model.speedup
            );
        }
        if !report.traces.is_empty() {
            let spans: usize = report.traces.iter().map(|t| t.summary.spans).sum();
            println!("trace: {} member traces, {} spans total", report.traces.len(), spans);
            if let Some(path) = &opts.config.telemetry.trace_path {
                println!("traces written to {}", path.display());
            }
        }
        if opts.verbose {
            let outcome = Outcome::from(&report)
                .with_config(
                    &opts.config.strategy.to_string(),
                    opts.config.pool.threads() as u32,
                    circuit.n_qubits(),
                )
                .with_label("cli");
            println!("outcome: {}", outcome.to_json());
        }
        Ok(states.swap_remove(0))
    }
}

fn execute_distributed(circuit: &Circuit, opts: &Options) -> Result<StateVector, String> {
    if !opts.ranks.is_power_of_two() {
        return Err(format!("--ranks must be a power of two, got {}", opts.ranks));
    }
    let g = opts.ranks.trailing_zeros();
    if g + 3 > circuit.n_qubits() {
        return Err(format!(
            "{} ranks on {} qubits leaves fewer than 3 local qubits; \
             use a wider circuit or fewer ranks",
            opts.ranks,
            circuit.n_qubits()
        ));
    }
    let plan = opts.dist_plan.unwrap_or_else(DistPlanKind::from_env);
    println!("running on {} in-process ranks ({plan} plan)…", opts.ranks);
    let telemetry = &opts.config.telemetry;
    let resilient = opts.faults.is_some()
        || opts.config.checkpoint.is_some()
        || opts.config.integrity.enabled();
    if resilient {
        return execute_resilient(circuit, opts);
    }
    let state = if telemetry.enabled {
        let (state, stats, traces) =
            run_distributed_planned_traced(circuit, opts.ranks, plan, telemetry)
                .map_err(|e| e.to_string())?;
        let total: u64 = stats.iter().map(|s| s.bytes_sent).sum();
        println!("communication: {:.2} MiB total across ranks", total as f64 / (1 << 20) as f64);
        for trace in &traces {
            let rank = trace.spans.first().map_or(0, |s| s.rank);
            println!(
                "rank {rank}: {} exchange spans, {:.2} MiB on the wire, {:.3} ms in exchanges",
                trace.summary.spans,
                trace.summary.bytes as f64 / (1 << 20) as f64,
                trace.summary.wall_ns as f64 / 1e6
            );
        }
        if let Some(path) = &telemetry.trace_path {
            println!("trace written to {}", path.display());
        }
        state
    } else {
        let (state, stats) =
            run_distributed_planned(circuit, opts.ranks, plan).map_err(|e| e.to_string())?;
        let total: u64 = stats.iter().map(|s| s.bytes_sent).sum();
        println!("communication: {:.2} MiB total across ranks", total as f64 / (1 << 20) as f64);
        state
    };
    Ok(state)
}

/// Distributed execution through the recovery envelope: fault plan on
/// the transport, coordinated checkpoints, integrity guards.
fn execute_resilient(circuit: &Circuit, opts: &Options) -> Result<StateVector, String> {
    let fault_plan =
        opts.faults.as_deref().map(|spec| parse_fault_plan(spec, opts.seed)).transpose()?;
    let cfg = ResilienceConfig {
        fault_plan,
        checkpoint_every: opts.config.checkpoint.as_ref().map_or(0, |c| c.every),
        checkpoint_dir: opts.config.checkpoint.as_ref().map(|c| c.dir.clone()),
        max_replays: opts.config.checkpoint.as_ref().map_or(3, |c| c.max_replays),
        integrity: opts.config.integrity.clone(),
        telemetry: opts.config.telemetry.clone(),
        dist_plan: opts.dist_plan,
        ..ResilienceConfig::default()
    };
    let run = run_resilient(circuit, opts.ranks, &cfg).map_err(|e| e.to_string())?;
    let total: u64 = run.stats.iter().map(|s| s.bytes_sent).sum();
    let retries: u64 = run.stats.iter().map(|s| s.retries).sum();
    let corrupt: u64 = run.stats.iter().map(|s| s.corrupt_dropped).sum();
    let injected: u64 = run.stats.iter().map(|s| s.faults_injected).sum();
    println!("communication: {:.2} MiB total across ranks", total as f64 / (1 << 20) as f64);
    println!(
        "resilience: {} faults injected, {} retries, {} corrupt frames dropped, \
         {} rollbacks, {} checkpoints",
        injected,
        retries,
        corrupt,
        run.total_recoveries(),
        run.recovery.iter().map(|r| r.checkpoints).sum::<u64>()
    );
    for (rank, trace) in run.traces.iter().enumerate() {
        println!(
            "rank {rank}: {} exchange spans, {:.2} MiB on the wire, {:.3} ms in exchanges",
            trace.summary.spans,
            trace.summary.bytes as f64 / (1 << 20) as f64,
            trace.summary.wall_ns as f64 / 1e6
        );
    }
    if let Some(path) = &opts.config.telemetry.trace_path {
        println!("trace written to {}", path.display());
    }
    Ok(run.state)
}
