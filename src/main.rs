//! `a64fx-qcs` — command-line front-end for the simulator.
//!
//! ```text
//! a64fx-qcs run <circuit.qasm> [options]     simulate an OpenQASM 2.0 file
//! a64fx-qcs demo <family> <n> [options]      run a built-in circuit family
//! a64fx-qcs emit <family> <n>                print a family as OpenQASM 2.0
//!
//! families: ghz qft random qv trotter qaoa grover shor
//!
//! options:
//!   --strategy naive|fused:<k>|blocked:<b>|planned:<b>:<k>   execution strategy [naive]
//!   --backend auto|scalar|simd               kernel SIMD backend [auto]
//!   --threads <t>                            worksharing threads [1]
//!   --ranks <r>                              distributed ranks (power of 2)
//!   --shots <s>                              sample and print counts
//!   --probs <top>                            print the top-N probabilities
//!   --model                                  attach the A64FX model report
//!   --seed <u64>                             RNG seed [1]
//! ```

use std::process::ExitCode;

use a64fx_qcs::a64fx::timing::ExecConfig;
use a64fx_qcs::a64fx::ChipParams;
use a64fx_qcs::core::kernels::simd::BackendChoice;
use a64fx_qcs::core::measure::sample_counts;
use a64fx_qcs::core::prelude::*;
use a64fx_qcs::core::{library, qasm};
use a64fx_qcs::dist::run_distributed;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Options {
    strategy: Strategy,
    backend: BackendChoice,
    threads: usize,
    ranks: usize,
    shots: usize,
    probs: usize,
    model: bool,
    seed: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            strategy: Strategy::Naive,
            backend: BackendChoice::Auto,
            threads: 1,
            ranks: 1,
            shots: 0,
            probs: 0,
            model: false,
            seed: 1,
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = args.split_first().ok_or_else(usage)?;
    match command.as_str() {
        "run" => {
            let (path, opts) = parse_run_args(rest)?;
            let source =
                std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let circuit = qasm::parse(&source).map_err(|e| e.to_string())?;
            execute(&circuit, &opts)
        }
        "demo" => {
            let (family, n, opts) = parse_demo_args(rest)?;
            let circuit = build_family(&family, n, opts.seed)?;
            execute(&circuit, &opts)
        }
        "emit" => {
            let (family, n, opts) = parse_demo_args(rest)?;
            let circuit = build_family(&family, n, opts.seed)?;
            let text = qasm::emit(&circuit)?;
            print!("{text}");
            Ok(())
        }
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: a64fx-qcs run <file.qasm> [opts] | demo <family> <n> [opts] | emit <family> <n>\n\
     families: ghz qft random qv trotter qaoa grover shor\n\
     opts: --strategy naive|fused:<k>|blocked:<b>|planned:<b>:<k>  --threads <t>  --ranks <r>\n\
           --backend auto|scalar|simd  --shots <s>  --probs <top>  --model  --seed <u64>"
        .to_string()
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--strategy" => {
                let v = value("--strategy")?;
                opts.strategy = parse_strategy(&v)?;
            }
            "--backend" => {
                let v = value("--backend")?;
                opts.backend = v.parse().map_err(|e| format!("--backend: {e}"))?;
            }
            "--threads" => {
                opts.threads = value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            "--ranks" => {
                opts.ranks = value("--ranks")?.parse().map_err(|e| format!("--ranks: {e}"))?
            }
            "--shots" => {
                opts.shots = value("--shots")?.parse().map_err(|e| format!("--shots: {e}"))?
            }
            "--probs" => {
                opts.probs = value("--probs")?.parse().map_err(|e| format!("--probs: {e}"))?
            }
            "--seed" => opts.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--model" => opts.model = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn parse_strategy(text: &str) -> Result<Strategy, String> {
    if text == "naive" {
        return Ok(Strategy::Naive);
    }
    if let Some(k) = text.strip_prefix("fused:") {
        let k: u32 = k.parse().map_err(|e| format!("fused:<k>: {e}"))?;
        return Ok(Strategy::Fused { max_k: k });
    }
    if let Some(b) = text.strip_prefix("blocked:") {
        let b: u32 = b.parse().map_err(|e| format!("blocked:<b>: {e}"))?;
        return Ok(Strategy::Blocked { block_qubits: b });
    }
    if let Some(rest) = text.strip_prefix("planned:") {
        let (b, k) = rest
            .split_once(':')
            .ok_or_else(|| "planned takes two parameters: planned:<b>:<k>".to_string())?;
        let b: u32 = b.parse().map_err(|e| format!("planned:<b>: {e}"))?;
        let k: u32 = k.parse().map_err(|e| format!("planned:<k>: {e}"))?;
        return Ok(Strategy::Planned { block_qubits: b, max_k: k });
    }
    Err(format!("unknown strategy `{text}` (naive | fused:<k> | blocked:<b> | planned:<b>:<k>)"))
}

fn parse_run_args(args: &[String]) -> Result<(String, Options), String> {
    let (path, rest) = args.split_first().ok_or("run needs a .qasm path")?;
    Ok((path.clone(), parse_options(rest)?))
}

fn parse_demo_args(args: &[String]) -> Result<(String, u32, Options), String> {
    let (family, rest) = args.split_first().ok_or("demo needs a family name")?;
    let (n, rest) = rest.split_first().ok_or("demo needs a qubit count")?;
    let n: u32 = n.parse().map_err(|e| format!("qubit count: {e}"))?;
    Ok((family.clone(), n, parse_options(rest)?))
}

fn build_family(family: &str, n: u32, seed: u64) -> Result<Circuit, String> {
    Ok(match family {
        "ghz" => library::ghz(n),
        "qft" => library::qft(n),
        "random" => library::random_circuit(n, 2 * n as usize, seed),
        "qv" => library::quantum_volume(n, seed),
        "trotter" => library::trotter_ising(n, 8, 1.0, 0.8, 0.1),
        "qaoa" => library::qaoa_maxcut_ring(n, 2, &[0.6, 0.4], &[0.3, 0.2]),
        "grover" => library::grover(n, (1usize << n) - 2),
        "shor" => {
            let t = n
                .checked_sub(4)
                .filter(|&t| t >= 2)
                .ok_or("shor needs n ≥ 6 (4 work + ≥2 counting qubits)")?;
            library::shor15_order_finding(7, t)
        }
        other => return Err(format!("unknown family `{other}`")),
    })
}

fn execute(circuit: &Circuit, opts: &Options) -> Result<(), String> {
    println!(
        "circuit: {} qubits, {} gates, depth {}",
        circuit.n_qubits(),
        circuit.len(),
        circuit.depth()
    );

    let state = if opts.ranks > 1 {
        if !opts.ranks.is_power_of_two() {
            return Err(format!("--ranks must be a power of two, got {}", opts.ranks));
        }
        let g = opts.ranks.trailing_zeros();
        if g + 3 > circuit.n_qubits() {
            return Err(format!(
                "{} ranks on {} qubits leaves fewer than 3 local qubits; \
                 use a wider circuit or fewer ranks",
                opts.ranks,
                circuit.n_qubits()
            ));
        }
        println!("running on {} in-process ranks…", opts.ranks);
        let (state, stats) = run_distributed(circuit, opts.ranks);
        let total: u64 = stats.iter().map(|s| s.bytes_sent).sum();
        println!("communication: {:.2} MiB total across ranks", total as f64 / (1 << 20) as f64);
        state
    } else {
        let mut sim = Simulator::new().with_strategy(opts.strategy).with_backend(opts.backend);
        if opts.threads > 1 {
            sim = sim.with_threads(opts.threads);
        }
        if opts.model {
            sim = sim.with_model(ChipParams::a64fx(), ExecConfig::full_chip());
        }
        let mut state = StateVector::zero(circuit.n_qubits());
        let report = sim.run(circuit, &mut state).map_err(|e| e.to_string())?;
        println!(
            "executed {} sweeps in {:.3} ms (host, {} kernels)",
            report.sweeps,
            report.wall_seconds * 1e3,
            report.backend
        );
        if let Some(model) = report.predicted {
            println!(
                "A64FX model: {:.3} µs, {:.1} MiB HBM traffic, {:.1} GF/s effective, bottlenecks {:?}",
                model.seconds * 1e6,
                model.mem_bytes as f64 / (1 << 20) as f64,
                model.gflops(),
                model.bottlenecks
            );
        }
        state
    };

    if opts.probs > 0 {
        let mut probs: Vec<(usize, f64)> = state.probabilities().into_iter().enumerate().collect();
        probs.sort_by(|a, b| b.1.total_cmp(&a.1));
        println!("top {} probabilities:", opts.probs);
        let width = circuit.n_qubits() as usize;
        for &(basis, p) in probs.iter().take(opts.probs) {
            println!("  |{basis:0width$b}⟩  {p:.6}");
        }
    }

    if opts.shots > 0 {
        let mut rng = StdRng::seed_from_u64(opts.seed);
        println!("{} shots:", opts.shots);
        let width = circuit.n_qubits() as usize;
        for (basis, count) in sample_counts(&state, opts.shots, &mut rng) {
            println!("  |{basis:0width$b}⟩  {count}");
        }
    }
    Ok(())
}
