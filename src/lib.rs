//! `a64fx-qcs`: facade crate for the A64FX state-vector quantum circuit
//! simulation reproduction.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can use a single dependency:
//!
//! * [`core`] (`qcs-core`) — the state-vector simulator itself.
//! * [`dist`] (`qcs-dist`) — distributed simulation over the MPI substrate.
//! * [`serve`] (`qcs-serve`) — the multi-tenant job server.
//! * [`sve`] (`sve-sim`) — the vector-length-agnostic SVE layer.
//! * [`omp`] (`omp-par`) — the OpenMP-like parallel runtime.
//! * [`a64fx`] (`a64fx-model`) — the A64FX performance model.
//! * [`mpi`] (`mpi-sim`) — the message-passing substrate.

pub use a64fx_model as a64fx;
pub use mpi_sim as mpi;
pub use omp_par as omp;
pub use qcs_core as core;
pub use qcs_dist as dist;
pub use qcs_serve as serve;
pub use sve_sim as sve;
