//! Variational quantum eigensolver for the transverse-field Ising chain:
//! a hardware-efficient Ry/CZ ansatz optimized by coordinate descent,
//! compared against exact diagonalization.
//!
//! ```sh
//! cargo run --release --example vqe_ising
//! ```

use a64fx_qcs::core::prelude::*;

const N: u32 = 4;
const LAYERS: usize = 4;

/// Parameters per layer: one Rzz angle per bond + one Rx angle per qubit.
const PARAMS_PER_LAYER: usize = (N as usize - 1) + N as usize;

/// Hamiltonian-variational ansatz for the TFIM: from |+…+⟩, alternate
/// bond-wise Rzz layers (cost direction) and qubit-wise Rx layers (mixer
/// direction). Every parameter drives exactly one gate, so the energy is
/// an exact sinusoid in each coordinate and Rotosolve lands on the
/// per-coordinate minimum in closed form.
fn ansatz(params: &[f64]) -> Circuit {
    assert_eq!(params.len(), LAYERS * PARAMS_PER_LAYER);
    let mut c = Circuit::new(N);
    for q in 0..N {
        c.h(q);
    }
    for layer in 0..LAYERS {
        let base = layer * PARAMS_PER_LAYER;
        for q in 0..N - 1 {
            c.rzz(q, q + 1, params[base + q as usize]);
        }
        for q in 0..N {
            c.rx(q, params[base + (N - 1) as usize + q as usize]);
        }
    }
    c
}

fn energy(h: &Hamiltonian, params: &[f64]) -> f64 {
    let mut s = StateVector::zero(N);
    Simulator::new().run(&ansatz(params), &mut s).unwrap();
    h.expectation(&s)
}

fn main() {
    let h = Hamiltonian::ising_chain(N, 1.0, 1.0);
    let exact = h.ground_energy(N);
    println!("TFIM chain, n = {N}, J = h = 1");
    println!("exact ground energy (dense diagonalization): {exact:.6}");

    // Coordinate descent (Rotosolve) from a symmetry-broken start — a
    // uniform initialization puts every qubit on the same trajectory and
    // coordinate descent stalls in the symmetric subspace.
    let mut params: Vec<f64> =
        (0..LAYERS * PARAMS_PER_LAYER).map(|i| 0.4 * ((i as f64) * 1.7).sin() + 0.2).collect();
    let mut current = energy(&h, &params);
    println!("\n{:>5}  {:>12}  {:>10}", "sweep", "energy", "gap");
    for sweep in 0..100 {
        for i in 0..params.len() {
            // Rotosolve-style update: for Ry ansätze the energy in one
            // parameter is A·cos(θ − φ) + c; three evaluations give the
            // minimizer in closed form.
            let orig = params[i];
            let e0 = current;
            params[i] = orig + std::f64::consts::FRAC_PI_2;
            let e_plus = energy(&h, &params);
            params[i] = orig - std::f64::consts::FRAC_PI_2;
            let e_minus = energy(&h, &params);
            // Rotosolve closed form: θ* = θ − π/2 − atan2(2e₀ − e₊ − e₋,
            //                                            e₊ − e₋).
            let theta_star = orig
                - std::f64::consts::FRAC_PI_2
                - (2.0 * e0 - e_plus - e_minus).atan2(e_plus - e_minus);
            // Fall back to the best of the three probes plus the analytic
            // candidate (robust against the atan2 branch).
            let candidates = [
                (orig, e0),
                (orig + std::f64::consts::FRAC_PI_2, e_plus),
                (orig - std::f64::consts::FRAC_PI_2, e_minus),
                (theta_star, {
                    params[i] = theta_star;
                    energy(&h, &params)
                }),
            ];
            let (best_theta, best_e) =
                candidates.into_iter().min_by(|a, b| a.1.total_cmp(&b.1)).expect("non-empty");
            params[i] = best_theta;
            current = best_e;
        }
        if sweep % 10 == 0 || sweep == 99 {
            println!("{sweep:>5}  {current:>12.6}  {:>10.2e}", current - exact);
        }
    }

    let gap = current - exact;
    println!("\nfinal VQE energy : {current:.6}");
    println!("energy gap       : {gap:.2e}");
    assert!(gap < 2e-3, "VQE should land near the ground state, gap = {gap}");
    println!("(within chemical-accuracy-scale distance of the exact value)");
}
