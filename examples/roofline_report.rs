//! A64FX chip report: peaks, roofline placement of every kernel class,
//! and the SVE vector-length sensitivity of a counted kernel.
//!
//! ```sh
//! cargo run --release --example roofline_report
//! ```

use a64fx_qcs::a64fx::roofline::{place, ridge_point};
use a64fx_qcs::a64fx::timing::{predict, ExecConfig, KernelProfile};
use a64fx_qcs::a64fx::traffic::{KernelKind, TrafficModel};
use a64fx_qcs::a64fx::ChipParams;
use a64fx_qcs::core::gates::standard;
use a64fx_qcs::core::kernels::sve::apply_1q_sve;
use a64fx_qcs::core::StateVector;
use a64fx_qcs::sve::{SveCtx, Vl};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let chip = ChipParams::a64fx();
    println!("A64FX (Fugaku node configuration)");
    println!(
        "  cores              : {} ({} CMGs × {})",
        chip.total_cores(),
        chip.n_cmgs,
        chip.cores_per_cmg
    );
    println!("  clock              : {} GHz", chip.freq_ghz);
    println!("  SVE width          : {} bits", chip.simd_bits);
    println!("  peak DP            : {:.3} TF/s", chip.peak_flops_chip() / 1e12);
    println!("  HBM2 bandwidth     : {:.3} TB/s", chip.peak_membw(4) / 1e12);
    println!("  memory             : {} GiB", chip.total_memory() / (1 << 30));
    println!("  largest state      : {} qubits", chip.max_qubits(0.1));
    println!(
        "  roofline ridge     : {:.1} flop/byte",
        ridge_point(chip.peak_flops_chip(), chip.peak_membw(4))
    );

    println!("\nkernel roofline placements (n = 28):");
    let model = TrafficModel::a64fx();
    for (name, kind, qs) in [
        ("diag 1q", KernelKind::OneQubitDiagonal, vec![3u32]),
        ("dense 1q", KernelKind::OneQubitDense, vec![3]),
        ("dense 2q", KernelKind::TwoQubitDense, vec![3, 9]),
        ("fused k=4", KernelKind::FusedDense { k: 4 }, vec![0, 1, 2, 3]),
    ] {
        let t = model.predict(kind, 28, &qs);
        let p = place(&chip, t.arithmetic_intensity, 48, 4);
        println!(
            "  {name:>9}: AI = {:.3} flop/B → {:>6.0} GF/s ({:.1}% of peak, {})",
            t.arithmetic_intensity,
            p.attainable / 1e9,
            p.efficiency * 100.0,
            if p.memory_bound { "memory-bound" } else { "compute-bound" },
        );
    }

    println!("\nSVE VL sweep (counted dense-1q kernel, L1-resident, predicted per-sweep time):");
    let mut rng = StdRng::seed_from_u64(9);
    for vl in Vl::pow2_sweep() {
        let mut ctx = SveCtx::new(vl);
        let mut state = StateVector::random(12, &mut rng);
        apply_1q_sve(&mut ctx, state.amplitudes_mut(), 11, &standard::h());
        let mut variant = chip.clone();
        variant.simd_bits = vl.bits();
        let mut profile = KernelProfile::from_sve_counts(ctx.counts(), vl);
        profile.mem_bytes = 0;
        profile.l2_bytes = 0;
        let pred = predict(&variant, &profile, &ExecConfig::single_core());
        println!(
            "  {vl:>7}: {:>8} instrs → {:>9.3} µs ({:?}-limited)",
            ctx.counts().total(),
            pred.seconds * 1e6,
            pred.bottleneck,
        );
    }
}
