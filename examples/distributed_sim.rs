//! Distributed simulation over the in-process MPI substrate, with the
//! Tofu-D network model pricing the measured communication.
//!
//! ```sh
//! cargo run --release --example distributed_sim
//! ```

use a64fx_qcs::core::library;
use a64fx_qcs::core::prelude::*;
use a64fx_qcs::dist::run_distributed;
use a64fx_qcs::mpi::{NetworkModel, TofuParams};

fn main() {
    let n = 14u32;
    let circuit = library::random_circuit(n, 8, 42);
    println!("random circuit: {} qubits, {} gates", n, circuit.len());

    // Single-process reference.
    let mut reference = StateVector::zero(n);
    Simulator::new().run(&circuit, &mut reference).unwrap();

    let net = NetworkModel::new(TofuParams::tofu_d());
    println!(
        "\n{:>5}  {:>14}  {:>12}  {:>16}  {:>12}",
        "ranks", "bytes/rank", "messages", "Tofu-D comm time", "max |Δamp|"
    );
    for ranks in [1usize, 2, 4, 8] {
        let (state, stats) = run_distributed(&circuit, ranks).expect("distributed run");
        let diff = state.max_abs_diff(&reference);
        let worst = stats.iter().max_by_key(|s| s.bytes_sent).expect("ranks ≥ 1");
        let comm = net.rank_time(worst);
        println!(
            "{:>5}  {:>14}  {:>12}  {:>13.1} µs  {:>12.2e}",
            ranks,
            format!("{:.2} MiB", worst.bytes_sent as f64 / (1 << 20) as f64),
            worst.messages_sent,
            comm.seconds * 1e6,
            diff,
        );
        assert!(diff < 1e-10, "distributed result must match the serial one");
    }
    println!("\nAll rank counts reproduce the single-process state exactly.");
}
