//! QFT with A64FX performance analysis: run the circuit with the chip
//! model attached and read the predicted time, traffic, and bottleneck
//! breakdown next to the live host measurement.
//!
//! ```sh
//! cargo run --release --example qft_analysis
//! ```

use a64fx_qcs::a64fx::timing::ExecConfig;
use a64fx_qcs::a64fx::ChipParams;
use a64fx_qcs::core::library;
use a64fx_qcs::core::prelude::*;

fn main() {
    let n = 16u32;
    let circuit = library::qft(n);
    println!(
        "QFT({n}): {} gates ({:?}), depth {}",
        circuit.len(),
        circuit.counts(),
        circuit.depth()
    );

    let base = SimConfig::new().model(ChipParams::a64fx(), ExecConfig::full_chip());

    for (label, strategy) in
        [("naive", Strategy::Naive), ("fused k=4", Strategy::Fused { max_k: 4 })]
    {
        let sim = base.clone().strategy(strategy).build().unwrap();
        let mut state = StateVector::zero(n);
        let report = sim.run(&circuit, &mut state).unwrap();
        let model = report.predicted.expect("model attached");
        println!("\n[{label}]");
        println!("  host wall time      : {:.3} ms", report.wall_seconds * 1e3);
        println!("  sweeps executed     : {}", report.sweeps);
        println!("  A64FX predicted time: {:.3} µs", model.seconds * 1e6);
        println!("  HBM traffic         : {:.1} MiB", model.mem_bytes as f64 / (1 << 20) as f64);
        println!("  DP FLOPs            : {:.2e}", model.flops as f64);
        println!("  effective bandwidth : {:.0} GB/s", model.effective_bandwidth() / 1e9);
        println!("  effective GFLOP/s   : {:.1}", model.gflops());
        println!("  bottlenecks         : {:?}", model.bottlenecks);

        // Sanity: QFT of |0…0⟩ is the uniform superposition.
        let uniform = 1.0 / (1u64 << n) as f64;
        let max_dev =
            (0..state.len()).map(|i| (state.probability(i) - uniform).abs()).fold(0.0, f64::max);
        println!("  max |P - uniform|   : {max_dev:.2e}");
    }
}
