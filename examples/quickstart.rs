//! Quickstart: build a circuit, simulate it, inspect the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use a64fx_qcs::core::measure::sample_counts;
use a64fx_qcs::core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A 5-qubit GHZ circuit: H on qubit 0, then a CNOT chain.
    let n = 5u32;
    let mut circuit = Circuit::new(n);
    circuit.h(0);
    for q in 1..n {
        circuit.cx(q - 1, q);
    }
    println!("circuit: {} qubits, {} gates, depth {}", n, circuit.len(), circuit.depth());

    // Run it on the |0…0⟩ state.
    let mut state = StateVector::zero(n);
    let report = Simulator::new().run(&circuit, &mut state).expect("widths match");
    println!("executed {} sweeps in {:.3} ms", report.sweeps, report.wall_seconds * 1e3);

    // The GHZ state: half the mass on |00000⟩, half on |11111⟩.
    println!("P(|00000⟩) = {:.4}", state.probability(0));
    println!("P(|11111⟩) = {:.4}", state.probability((1 << n) - 1));

    // Entanglement shows in the samples: all-zeros or all-ones, nothing
    // in between.
    let mut rng = StdRng::seed_from_u64(1);
    println!("\n1000 shots:");
    for (basis, count) in sample_counts(&state, 1000, &mut rng) {
        println!("  |{basis:05b}⟩: {count}");
    }

    // The same circuit under gate fusion produces the same state.
    let fused_sim = SimConfig::new().strategy(Strategy::Fused { max_k: 3 }).build().unwrap();
    let mut fused = StateVector::zero(n);
    fused_sim.run(&circuit, &mut fused).unwrap();
    println!("\nfused run max |Δamp| = {:.2e}", state.max_abs_diff(&fused));
}
