//! Noisy simulation via quantum trajectories: watch GHZ coherence decay
//! under depolarizing noise, and check entanglement with the analysis
//! tools.
//!
//! ```sh
//! cargo run --release --example noisy_trajectories
//! ```

use a64fx_qcs::core::analysis::{entanglement_entropy, purity};
use a64fx_qcs::core::library;
use a64fx_qcs::core::noise::{average_expectation, NoiseChannel};
use a64fx_qcs::core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 5u32;
    let circuit = library::ghz(n);
    let all_x = PauliString::new((0..n).map(|q| (q, Pauli::X)).collect());

    // Noiseless reference: the GHZ X-parity is exactly +1, and every
    // bipartition carries ln 2 of entanglement.
    let mut clean = StateVector::zero(n);
    Simulator::new().run(&circuit, &mut clean).unwrap();
    println!("noiseless GHZ({n}):");
    println!("  ⟨X⊗…⊗X⟩            = {:+.4}", all_x.expectation(&clean));
    println!(
        "  S(q0)               = {:.4} nats (ln 2 = {:.4})",
        entanglement_entropy(&clean, &[0]),
        std::f64::consts::LN_2
    );
    println!("  purity(q0)          = {:.4}", purity(&clean, &[0]));

    // Trajectory-averaged parity under increasing depolarizing strength.
    println!("\ndepolarizing noise after every gate (300 trajectories each):");
    println!("{:>8}  {:>12}", "p", "⟨X⊗…⊗X⟩");
    let mut rng = StdRng::seed_from_u64(7);
    for p in [0.0, 0.01, 0.05, 0.1, 0.2, 0.4] {
        let avg =
            average_expectation(&circuit, &all_x, NoiseChannel::Depolarizing { p }, 300, &mut rng);
        println!("{p:>8.2}  {avg:>+12.4}");
    }

    // Amplitude damping pushes the population toward |0…0⟩.
    println!("\namplitude damping (γ = 0.3) on one trajectory:");
    let mut s = StateVector::zero(n);
    let errors = a64fx_qcs::core::noise::run_trajectory(
        &circuit,
        &mut s,
        NoiseChannel::AmplitudeDamping { gamma: 0.3 },
        &mut rng,
    );
    println!("  realized decay events: {errors}");
    println!("  P(|0…0⟩) = {:.4}", s.probability(0));
    println!("  norm²    = {:.6}", s.norm_sqr());
}
